"""Global configuration for the reproduction library.

Keeps the handful of knobs that experiments, benchmarks and tests share:
the default (modelled) device, default convergence tolerance, default
restart length and the random seed used by synthetic matrix generators.

The paper's experimental setup (Section V) is encoded here as defaults:

* relative residual tolerance ``1e-10``
* restart length ``m = 50``
* right-hand side of all ones, zero initial guess
* a single Tesla V100 (16 GB) as the execution device
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

__all__ = [
    "ReproConfig",
    "ServeConfig",
    "ObsConfig",
    "get_config",
    "set_config",
    "default_config",
    "rng",
]


def _default_backend() -> str:
    """Backend name from the ``REPRO_BACKEND`` environment variable."""
    return os.environ.get("REPRO_BACKEND", "numpy").strip().lower() or "numpy"


@dataclass(frozen=True)
class ServeConfig:
    """Defaults of the solver service layer (:mod:`repro.serve`).

    Session knobs (one operator):

    max_block:
        Micro-batch width cap: the scheduler dispatches at most this many
        coalesced right-hand sides per batched solve.
    max_wait_ms:
        Micro-batching window in milliseconds: a queued request is
        dispatched once this much time has passed since batch assembly
        began, even if the batch is not full.  ``0`` disables
        coalescing-by-waiting (requests still batch when they are already
        queued together).
    policy:
        Batching policy mode: ``"auto"`` consults the kernel cost model
        per operator, ``"block"`` always batches to the width cap,
        ``"sequential"`` forces width-1 solves.

    Farm knobs (multi-operator, multi-tenant — :class:`repro.serve.SolverFarm`):

    max_sessions:
        Warm-session budget of the :class:`repro.serve.SessionRegistry`:
        the least-recently-used session (its warmed plans and workspace
        pool) is evicted when a new operator would exceed this count.
    max_session_bytes:
        Optional memory budget (estimated bytes of matrices + pooled
        workspaces across all warm sessions) triggering the same LRU
        eviction; ``None`` disables byte accounting.
    queue_depth:
        Per-tenant bounded queue depth; a ``submit()`` beyond it is
        rejected with :class:`repro.serve.RejectedError` (backpressure)
        instead of growing the queue without bound.
    fairness:
        Worker dispatch order across tenants: ``"weighted"`` picks the
        ready tenant with the smallest served-work/weight ratio (weighted
        fair sharing — a hot tenant cannot starve the others),
        ``"fifo"`` serves tenants strictly by oldest waiting request.
    workers:
        Shared worker threads draining the per-tenant queues.
    breaker_threshold:
        Per-operator circuit breaker: this many *consecutive* hard solve
        failures (exceptions, breakdowns, non-finite results) quarantine
        the operator — its warmed session is evicted and submits fail
        fast with :class:`repro.serve.CircuitOpenError`.
    breaker_cooldown_ms:
        Quarantine length in milliseconds; after it one probe request is
        admitted (half-open) and its outcome decides whether traffic
        resumes.
    """

    max_block: int = 8
    max_wait_ms: float = 2.0
    policy: str = "auto"
    max_sessions: int = 8
    max_session_bytes: Optional[int] = None
    queue_depth: int = 64
    fairness: str = "weighted"
    workers: int = 2
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 250.0


@dataclass(frozen=True)
class ObsConfig:
    """Defaults of the observability layer (:mod:`repro.obs`).

    tracing:
        Enable span-based request tracing.  Off by default: when off the
        serve hot paths carry a single ``is None`` check and allocate
        nothing.  When on, sessions and farms created without an
        explicit ``obs=`` share the lazily-created process-default
        tracer (:func:`repro.obs.default_tracer`).
    trace_capacity:
        Bound on the finished-span buffer of a config-created tracer;
        the oldest spans are dropped (and counted) beyond it.
    metrics:
        Publish session/farm statistics into the process metrics
        registry (:func:`repro.obs.default_registry`) for Prometheus
        exposition.  Pull-based — state is sampled at scrape time, so
        leaving this on costs nothing per request.
    sample_rate:
        Head-sampling rate of the config-created tracer: the fraction of
        requests that get a *full* span tree (``1.0`` = trace everything,
        the PR-9 behavior).  Below 1.0 the tracer runs with a
        :class:`repro.obs.Sampler`: unsampled requests record only cheap
        stage timestamps, and their span trees are synthesized after the
        fact only when a tail rule keeps them.
    tail_keep:
        Tail-based retention (only meaningful with ``sample_rate < 1``):
        always keep the trace of a request that failed, blew its
        deadline, tripped an anomaly detector, or landed in the slowest
        decile — regardless of the head-sampling decision.
    slo_availability_target:
        Default availability objective of :class:`repro.obs.SloPolicy`
        (fraction of non-cancelled requests that must succeed).
    slo_latency_p95_ms:
        Default latency objective: windowed p95 must stay at or below
        this many milliseconds (``0`` disables the latency objective).
    slo_fast_window_s / slo_slow_window_s:
        Default burn-rate windows of the SLO engine (multi-window
        alerting: the fast window catches sharp regressions, the slow
        window filters blips).
    """

    tracing: bool = False
    trace_capacity: int = 65536
    metrics: bool = True
    sample_rate: float = 1.0
    tail_keep: bool = True
    slo_availability_target: float = 0.999
    slo_latency_p95_ms: float = 0.0
    slo_fast_window_s: float = 300.0
    slo_slow_window_s: float = 3600.0


#: Deprecated flat ``ReproConfig`` field -> canonical ``ServeConfig`` field.
_DEPRECATED_SERVE_ALIASES = {
    "serve_max_block": "max_block",
    "serve_max_wait_ms": "max_wait_ms",
    "serve_policy": "policy",
}


def _warn_serve_alias(old: str, *, stacklevel: int = 3) -> str:
    new = _DEPRECATED_SERVE_ALIASES[old]
    warnings.warn(
        f"ReproConfig.{old} is deprecated; use ReproConfig.serve.{new} "
        f"(a ServeConfig field) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return new


@dataclass(frozen=True)
class ReproConfig:
    """Immutable bundle of library-wide defaults.

    Attributes
    ----------
    rtol:
        Default relative residual convergence tolerance (paper: ``1e-10``).
    restart:
        Default GMRES restart length ``m`` (paper: 50).
    max_restarts:
        Default cap on the number of restart cycles.
    device_name:
        Name of the modelled device used by :mod:`repro.perfmodel`
        (``"v100"`` reproduces the paper's testbed).
    seed:
        Seed for synthetic matrix generators and right-hand sides that need
        randomness (the paper uses deterministic all-ones right-hand sides;
        randomness only enters through proxy matrix generation).
    meter_kernels:
        If False, kernels skip performance-model accounting entirely
        (useful for the pure-numerics tests, which run slightly faster).
    backend:
        Name of the kernel backend the execution context dispatches to
        (see :mod:`repro.backends`).  Defaults to the ``REPRO_BACKEND``
        environment variable, falling back to the NumPy reference.
    serve:
        :class:`ServeConfig` bundle of the service-layer defaults
        (micro-batching knobs plus the multi-tenant farm knobs).  The
        former flat fields ``serve_max_block`` / ``serve_max_wait_ms`` /
        ``serve_policy`` still work — as constructor keywords, through
        :func:`set_config`, and as read-only attributes — but emit
        :class:`DeprecationWarning`.
    obs:
        :class:`ObsConfig` bundle of the observability defaults (request
        tracing, metrics publication — see :mod:`repro.obs`).
    """

    rtol: float = 1e-10
    restart: int = 50
    max_restarts: int = 400
    device_name: str = "v100"
    seed: int = 20210516  # arXiv submission date of the paper
    meter_kernels: bool = True
    backend: str = field(default_factory=_default_backend)
    serve: ServeConfig = field(default_factory=ServeConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __init__(
        self,
        rtol: float = 1e-10,
        restart: int = 50,
        max_restarts: int = 400,
        device_name: str = "v100",
        seed: int = 20210516,
        meter_kernels: bool = True,
        backend: Optional[str] = None,
        serve: Optional[ServeConfig] = None,
        obs: Optional[ObsConfig] = None,
        **legacy,
    ) -> None:
        # Hand-written so the deprecated flat serve fields keep working as
        # constructor keywords (dataclasses leave a class-defined __init__
        # alone; replace() still round-trips through the canonical names).
        unknown = set(legacy) - set(_DEPRECATED_SERVE_ALIASES)
        if unknown:
            raise TypeError(
                f"ReproConfig() got unexpected keyword arguments {sorted(unknown)}"
            )
        serve = serve if serve is not None else ServeConfig()
        if legacy:
            serve = replace(
                serve,
                **{_warn_serve_alias(old): value for old, value in legacy.items()},
            )
        object.__setattr__(self, "rtol", rtol)
        object.__setattr__(self, "restart", restart)
        object.__setattr__(self, "max_restarts", max_restarts)
        object.__setattr__(self, "device_name", device_name)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "meter_kernels", meter_kernels)
        object.__setattr__(
            self, "backend", backend if backend is not None else _default_backend()
        )
        object.__setattr__(self, "serve", serve)
        object.__setattr__(self, "obs", obs if obs is not None else ObsConfig())

    # -- deprecated flat serve fields (read-only aliases) ----------------- #
    @property
    def serve_max_block(self) -> int:
        _warn_serve_alias("serve_max_block")
        return self.serve.max_block

    @property
    def serve_max_wait_ms(self) -> float:
        _warn_serve_alias("serve_max_wait_ms")
        return self.serve.max_wait_ms

    @property
    def serve_policy(self) -> str:
        _warn_serve_alias("serve_policy")
        return self.serve.policy


_DEFAULT = ReproConfig()
_CURRENT: ReproConfig = _DEFAULT


def default_config() -> ReproConfig:
    """The library's built-in defaults (paper Section V settings)."""
    return _DEFAULT


def get_config() -> ReproConfig:
    """Return the currently active configuration."""
    return _CURRENT


def set_config(config: Optional[ReproConfig] = None, **overrides) -> ReproConfig:
    """Replace the active configuration.

    Either pass a full :class:`ReproConfig` or keyword overrides applied on
    top of the current one.  Returns the new active configuration.

    The deprecated flat serve fields (``serve_max_block`` /
    ``serve_max_wait_ms`` / ``serve_policy``) are still accepted as
    overrides — they emit :class:`DeprecationWarning` and are folded into
    the canonical :attr:`ReproConfig.serve` bundle.
    """
    global _CURRENT
    base = config if config is not None else _CURRENT
    serve_overrides = {
        _warn_serve_alias(old): overrides.pop(old)
        for old in list(overrides)
        if old in _DEPRECATED_SERVE_ALIASES
    }
    if serve_overrides:
        serve = overrides.get("serve", base.serve)
        overrides["serve"] = replace(serve, **serve_overrides)
    _CURRENT = replace(base, **overrides) if overrides else base
    return _CURRENT


def rng(seed: Optional[int] = None) -> np.random.Generator:
    """Deterministic random generator for tests, benchmarks and generators.

    Seeded from the active configuration (:attr:`ReproConfig.seed`) unless
    an explicit seed is given — every stochastic input in the repo routes
    through here so CI runs are reproducible bit-for-bit.
    """
    cfg = get_config()
    return np.random.default_rng(cfg.seed if seed is None else int(seed))
