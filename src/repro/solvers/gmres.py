"""Restarted GMRES(m) — the paper's Algorithm 1.

Right-preconditioned GMRES with two-pass classical Gram-Schmidt
orthogonalization (CGS2), Givens-rotation least squares, an implicit
residual estimate monitored every iteration, and the true residual
recomputed at every restart.  Everything runs in a single *working
precision* (the Belos solvers are templated on one scalar type); the
multiprecision variants (GMRES-IR, GMRES-FD) are built on top of the cycle
routine exported here.

The solver is deliberately faithful to the kernel sequence of the Belos
implementation the paper measures, because those kernel calls are what the
performance model meters:

* per iteration: 1 SpMV (plus the preconditioner's SpMVs), 2× GEMV-T and
  2× GEMV-N (CGS2), one norm, one vector scale;
* per restart: an SpMV + axpy to recompute the true residual, a small
  host-side triangular solve, one GEMV-N to form the solution update, and
  one extra preconditioner application (right preconditioning recovers
  ``x = x0 + M V y``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..config import get_config
from ..linalg import kernels
from ..linalg.dense import GivensWorkspace
from ..linalg.multivector import MultiVector
from ..obs.probe import ProbeEvent
from ..ortho import OrthogonalizationManager, make_ortho_manager
from ..perfmodel.timer import KernelTimer, use_timer
from ..precision import Precision, as_precision
from ..preconditioners.base import IdentityPreconditioner, Preconditioner
from ..preconditioners.mixed import wrap_for_precision
from ..sparse.csr import CsrMatrix
from .result import ConvergenceHistory, SolveResult, SolverStatus
from .status import LossOfAccuracyTest, SolveControl, StagnationTest

__all__ = ["gmres", "run_gmres_cycle", "CycleOutcome", "GmresWorkspace"]

#: Subdiagonal entries below this absolute value are treated as a lucky breakdown.
BREAKDOWN_TOLERANCE = 1e-30


@dataclass
class CycleOutcome:
    """Result of one GMRES(m) restart cycle."""

    update: np.ndarray
    iterations: int
    implicit_norms: List[float] = field(default_factory=list)
    breakdown: bool = False
    implicit_converged: bool = False

    @property
    def final_implicit_norm(self) -> float:
        return self.implicit_norms[-1] if self.implicit_norms else float("inf")


class GmresWorkspace:
    """Pre-allocated storage reused across restart cycles.

    Holds the Krylov basis :class:`MultiVector` (``n × (m+1)``) and the
    Givens workspace for the Hessenberg least-squares problem, both in the
    working precision.  GMRES-IR keeps one of these for its inner fp32
    solver and reuses it across refinement steps — just like the Belos
    solver object the paper's implementation re-feeds with new right-hand
    sides.

    It also owns the scratch vectors of the steady-state iteration, so a
    solve allocates nothing once the workspace exists:

    * ``w`` / ``r`` — driver scratch for the restart-time true residual
      (``w = A x``, ``r = b - w``);
    * ``z`` — preconditioned-vector buffer inside the cycle (also reused
      for the cycle-final right-preconditioner application);
    * ``update`` — the solution update ``V y`` of a cycle;
    * ``hcol`` — Hessenberg-column-length buffer for the triangular-solve
      coefficients ``y`` at the end of a cycle.

    ``update``/``z`` are handed out through :class:`CycleOutcome`, so the
    outcome of a cycle is only valid until the next cycle runs on the same
    workspace — every solver consumes it immediately.
    """

    def __init__(self, n: int, restart: int, precision) -> None:
        self.precision = as_precision(precision)
        self.restart = int(restart)
        self.basis = MultiVector(n, self.restart + 1, self.precision)
        self.givens = GivensWorkspace(self.restart, dtype=self.precision.dtype)
        dtype = self.precision.dtype
        self.w = np.empty(n, dtype=dtype)
        self.r = np.empty(n, dtype=dtype)
        self.z = np.empty(n, dtype=dtype)
        self.update = np.empty(n, dtype=dtype)
        self.hcol = np.empty(self.restart + 1, dtype=dtype)

    def storage_bytes(self) -> int:
        """Device memory held by the Krylov basis (for OOM checks)."""
        return self.basis.storage_bytes()

    def accommodates(self, n: int, restart: int, precision) -> bool:
        """True if this workspace can run a solve of the given shape.

        Reusable for any solve on the same vector length and precision
        whose restart does not exceed the capacity it was built with
        (cycles are capped by ``max_steps``, so a longer-restart workspace
        yields bit-identical numerics to a fresh exact-size one).
        """
        return (
            self.basis.length == n
            and self.restart >= restart
            and self.precision.dtype == as_precision(precision).dtype
        )


def _resolve_gmres_workspace(
    workspace: "GmresWorkspace | None", n: int, restart: int, precision
) -> GmresWorkspace:
    """Validate a caller-provided workspace or allocate a fresh one.

    The single-vector twin of the Block-GMRES batch-entry hook: the serve
    layer's :class:`~repro.serve.OperatorSession` pools one workspace for
    its width-1 dispatches so steady-state serving allocates no Krylov
    storage.
    """
    if workspace is None:
        return GmresWorkspace(n, restart, precision)
    if not workspace.accommodates(n, restart, precision):
        raise ValueError(
            f"provided workspace (n={workspace.basis.length}, "
            f"restart={workspace.restart}, precision={workspace.precision.name}) "
            f"cannot accommodate a solve with n={n}, restart={restart}, "
            f"precision={as_precision(precision).name}"
        )
    return workspace


def run_gmres_cycle(
    matrix: CsrMatrix,
    residual: np.ndarray,
    residual_norm: float,
    workspace: GmresWorkspace,
    *,
    ortho: OrthogonalizationManager,
    preconditioner: Preconditioner,
    absolute_target: Optional[float] = None,
    max_steps: Optional[int] = None,
    control: Optional[SolveControl] = None,
) -> CycleOutcome:
    """Run one restart cycle of GMRES(m) and return the solution update.

    Parameters
    ----------
    matrix:
        System matrix in the working precision.
    residual:
        Current residual ``b - A x`` (the cycle's right-hand side), already
        in the working precision.  Not modified.
    residual_norm:
        Its 2-norm (computed by the caller, who usually needs it anyway).
    workspace:
        Pre-allocated basis and Givens storage (defines the restart length).
    ortho:
        Orthogonalization manager (CGS2 in the paper).
    preconditioner:
        Right preconditioner in the working precision
        (:class:`IdentityPreconditioner` when unpreconditioned).
    absolute_target:
        If given, the cycle stops early once the implicit residual estimate
        drops below this absolute value (standard GMRES monitors its
        implicit residual).  GMRES-IR passes ``None``: its inner fp32
        residuals "give little information about the convergence of the
        overall problem", so inner cycles always run the full ``m`` steps.
    max_steps:
        Optional cap below the restart length (used by GMRES-FD to stop at
        the precision-switch iteration).
    control:
        Optional :class:`~repro.solvers.SolveControl` polled every
        ``control.check_interval`` Arnoldi steps; when it demands a stop
        the cycle ends early and still returns the partial update (the
        driver classifies the terminal status at the restart boundary).

    Returns
    -------
    CycleOutcome
        The (right-preconditioned) solution update ``M V y`` and the
        per-iteration implicit residual norms (absolute).  The update
        vector is a view into the workspace's scratch and is only valid
        until the next cycle runs on the same workspace; callers fold it
        into their solution immediately.
    """
    dtype = workspace.precision.dtype
    if matrix.dtype != dtype:
        raise TypeError(
            f"matrix precision {matrix.dtype.name} does not match the "
            f"workspace precision {dtype.name}"
        )
    if residual.dtype != dtype:
        raise TypeError("residual precision does not match the workspace precision")

    basis = workspace.basis
    givens = workspace.givens
    basis.reset()
    givens.reset(residual_norm)

    steps = workspace.restart if max_steps is None else min(max_steps, workspace.restart)
    if residual_norm <= 0.0 or steps == 0:
        workspace.update[:] = 0
        return CycleOutcome(update=workspace.update, iterations=0)

    basis.append(residual)
    kernels.scal(1.0 / residual_norm, basis.column(0))

    implicit_norms: List[float] = []
    breakdown = False
    implicit_converged = False
    iterations = 0

    for j in range(steps):
        v_j = basis.column(j)
        z = v_j if preconditioner.is_identity else preconditioner.apply(v_j, out=workspace.z)
        # The SpMV writes straight into the next basis column (a contiguous
        # view of the Fortran-ordered block), so forming the new Arnoldi
        # vector neither allocates nor copies.
        w = kernels.spmv(matrix, z, out=basis.column(j + 1))
        h, h_next = ortho.orthogonalize(basis, w)
        implicit = givens.append_column(h, h_next)
        implicit_norms.append(implicit)
        iterations += 1
        if control is not None:
            control.charge(1)

        if h_next <= BREAKDOWN_TOLERANCE:
            breakdown = True
            implicit_converged = True
            break
        # The next basis vector is always formed (Belos does the same); it is
        # simply unused when the cycle ends at this iteration.
        kernels.scal(1.0 / h_next, w)
        basis.set_count(j + 2)  # column j+1 is already in place
        if absolute_target is not None and implicit <= absolute_target:
            implicit_converged = True
            break
        if (
            control is not None
            and iterations % control.check_interval == 0
            and control.poll() is not None
        ):
            break

    y = givens.solve(out=workspace.hcol[:iterations])
    update = basis.combine(y, j=iterations, out=workspace.update)
    if not preconditioner.is_identity:
        update = preconditioner.apply(update, out=workspace.z)
    return CycleOutcome(
        update=update,
        iterations=iterations,
        implicit_norms=implicit_norms,
        breakdown=breakdown,
        implicit_converged=implicit_converged,
    )


def gmres(
    matrix: CsrMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    precision: Union[str, Precision, None] = None,
    restart: Optional[int] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    max_restarts: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    ortho: Union[str, OrthogonalizationManager] = "cgs2",
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    loss_of_accuracy_check: bool = True,
    stagnation: Optional[StagnationTest] = None,
    fp64_check: bool = True,
    workspace: Optional[GmresWorkspace] = None,
    control: Optional[SolveControl] = None,
    probe=None,
) -> SolveResult:
    """Solve ``A x = b`` with restarted GMRES(m) in a single working precision.

    Parameters
    ----------
    matrix:
        System matrix (any precision; converted to the working precision —
        the one-time conversion is not metered, matching how the paper
        excludes the fp32 matrix copy from solve times).
    b, x0:
        Right-hand side and optional initial guess (default zero).
    precision:
        Working precision (default: the matrix's own precision).
    restart:
        Restart length ``m`` (default 50, the paper's setting).
    tol:
        Relative residual tolerance ``||b - A x|| / ||b||`` (default 1e-10).
    max_iterations / max_restarts:
        Iteration budget; whichever is hit first terminates the solve.
    preconditioner:
        Right preconditioner.  If its precision differs from the working
        precision it is wrapped so every application casts (and is charged
        for) the conversion — the paper's "fp32 preconditioner with fp64
        GMRES" configuration.
    ortho:
        Orthogonalization: ``"cgs2"`` (paper default), ``"cgs"`` or ``"mgs"``.
    timer:
        Optional existing :class:`KernelTimer` to record into (a fresh one
        is created otherwise and attached to the result).
    loss_of_accuracy_check:
        Detect implicit/explicit residual divergence and stop with
        ``SolverStatus.LOSS_OF_ACCURACY`` (Section V-F behaviour).
    stagnation:
        Optional :class:`StagnationTest` applied to the explicit residuals.
    fp64_check:
        Also report the final residual recomputed in fp64 (unmetered).
    workspace:
        Optional pre-allocated :class:`GmresWorkspace` to reuse (must
        accommodate this solve's shape).  The serve layer pools one for
        its width-1 dispatches; numerics are bit-identical to a fresh
        workspace.
    control:
        Optional :class:`~repro.solvers.SolveControl` — a cooperative
        deadline / cancellation / iteration-budget token polled at every
        restart boundary and every ``control.check_interval`` inner
        iterations.  A triggered control terminates the solve with status
        ``TIMED_OUT``, ``CANCELLED`` or ``MAX_ITERATIONS`` and returns the
        best iterate reached so far.
    probe:
        Optional convergence probe — a callable fed one
        :class:`~repro.obs.ProbeEvent` per restart boundary (the explicit
        relative residual the solver already computes there) plus one
        terminal event carrying the final status.  See
        :mod:`repro.obs.probe`.

    Returns
    -------
    SolveResult
    """
    cfg = get_config()
    restart = cfg.restart if restart is None else int(restart)
    tol = cfg.rtol if tol is None else float(tol)
    max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
    if max_iterations is None:
        max_iterations = restart * max_restarts
    prec = as_precision(precision if precision is not None else matrix.dtype)
    ortho_mgr = make_ortho_manager(ortho) if isinstance(ortho, str) else ortho
    solver_name = name or f"gmres({restart})-{prec.name}"

    A = matrix.astype(prec)
    b_work = np.asarray(b, dtype=prec.dtype)
    n = A.n_rows
    if b_work.shape != (n,):
        raise ValueError(f"right-hand side must have length {n}")
    x = (
        np.zeros(n, dtype=prec.dtype)
        if x0 is None
        else np.asarray(x0, dtype=prec.dtype).copy()
    )

    if preconditioner is None:
        precond: Preconditioner = IdentityPreconditioner(precision=prec)
    else:
        precond = wrap_for_precision(preconditioner, prec)

    workspace = _resolve_gmres_workspace(workspace, n, restart, prec)
    history = ConvergenceHistory()
    timer = timer or KernelTimer(solver_name)
    loa = LossOfAccuracyTest(tolerance=tol) if loss_of_accuracy_check else None

    status = SolverStatus.MAX_ITERATIONS
    total_iterations = 0
    restarts = 0
    relative_residual = float("inf")
    pending_implicit: Optional[float] = None

    with use_timer(timer):
        bnorm = kernels.norm2(b_work)
        if bnorm == 0.0:
            # Zero right-hand side: the solution is zero.
            if probe is not None:
                probe(ProbeEvent(
                    solver="gmres",
                    kind="terminal",
                    iteration=0,
                    restarts=0,
                    residual=0.0,
                    status=SolverStatus.CONVERGED,
                ))
            result_x = np.zeros(n, dtype=prec.dtype)
            return SolveResult(
                x=result_x,
                status=SolverStatus.CONVERGED,
                iterations=0,
                restarts=0,
                relative_residual=0.0,
                relative_residual_fp64=0.0,
                history=history,
                timer=timer,
                solver="gmres",
                precision=prec.name,
                details={"restart": restart},
            )

        while True:
            # True residual r = b - A x (recomputed at every restart, into
            # the workspace's scratch vectors — no per-restart allocation).
            w = kernels.spmv(A, x, out=workspace.w)
            r = kernels.copy(b_work, out=workspace.r)
            kernels.axpy(-1.0, w, r)
            rnorm = kernels.norm2(r)
            relative_residual = rnorm / bnorm
            history.record_explicit(total_iterations, relative_residual)
            if probe is not None:
                probe(ProbeEvent(
                    solver="gmres",
                    kind="restart",
                    iteration=total_iterations,
                    restarts=restarts,
                    residual=relative_residual,
                ))

            if relative_residual <= tol:
                status = SolverStatus.CONVERGED
                break
            if not np.isfinite(relative_residual):
                # A NaN/Inf residual means the working precision broke down
                # (overflow, or an injected fault); no amount of further
                # iteration recovers, so classify instead of looping.
                status = SolverStatus.BREAKDOWN
                break
            if control is not None:
                demanded = control.poll()
                if demanded is not None:
                    status = demanded
                    break
            if (
                loa is not None
                and pending_implicit is not None
                and loa.triggered(pending_implicit / bnorm, relative_residual)
            ):
                status = SolverStatus.LOSS_OF_ACCURACY
                break
            if stagnation is not None and stagnation.update(relative_residual):
                status = SolverStatus.STAGNATION
                break
            if total_iterations >= max_iterations or restarts >= max_restarts:
                status = SolverStatus.MAX_ITERATIONS
                break

            remaining = max_iterations - total_iterations
            outcome = run_gmres_cycle(
                A,
                r,
                rnorm,
                workspace,
                ortho=ortho_mgr,
                preconditioner=precond,
                absolute_target=tol * bnorm,
                max_steps=min(restart, remaining),
                control=control,
            )
            for k, implicit_abs in enumerate(outcome.implicit_norms, start=1):
                history.record_implicit(total_iterations + k, implicit_abs / bnorm)
            kernels.axpy(1.0, outcome.update, x)
            total_iterations += outcome.iterations
            restarts += 1
            pending_implicit = outcome.final_implicit_norm
            if outcome.iterations == 0:
                # Defensive: no progress possible (e.g. zero residual cycle).
                status = SolverStatus.BREAKDOWN
                break

    if probe is not None:
        probe(ProbeEvent(
            solver="gmres",
            kind="terminal",
            iteration=total_iterations,
            restarts=restarts,
            residual=relative_residual,
            status=status,
        ))
    rel64 = _fp64_relative_residual(matrix, b, x) if fp64_check else relative_residual
    return SolveResult(
        x=x,
        status=status,
        iterations=total_iterations,
        restarts=restarts,
        relative_residual=relative_residual,
        relative_residual_fp64=rel64,
        history=history,
        timer=timer,
        solver="gmres",
        precision=prec.name,
        details={
            "restart": restart,
            "tolerance": tol,
            "orthogonalization": ortho_mgr.name,
            "preconditioner": precond.name,
            "basis_bytes": workspace.storage_bytes(),
        },
    )


def _fp64_relative_residual(matrix: CsrMatrix, b: np.ndarray, x: np.ndarray) -> float:
    """Unmetered fp64 check of ``||b - A x|| / ||b||`` (accuracy verification)."""
    A64 = matrix.astype("double")
    b64 = np.asarray(b, dtype=np.float64)
    x64 = np.asarray(x, dtype=np.float64)
    bnorm = float(np.linalg.norm(b64))
    if bnorm == 0.0:
        return float(np.linalg.norm(A64.matvec(x64)))
    return float(np.linalg.norm(b64 - A64.matvec(x64)) / bnorm)
