"""Linear solvers: GMRES(m) and its multiprecision variants.

* :func:`~repro.solvers.gmres.gmres` — restarted GMRES in one working
  precision (the paper's Algorithm 1 / baseline).
* :func:`~repro.solvers.gmres_ir.gmres_ir` — GMRES with iterative
  refinement (Algorithm 2): fp32 inner cycles, fp64 refinement.
* :func:`~repro.solvers.gmres_fd.gmres_fd` — the Float→Double switching
  solver the paper compares against (Section III-C).
* :func:`~repro.solvers.cg.cg` — preconditioned conjugate gradients for the
  SPD problems.
* :func:`~repro.solvers.ir_three_precision.gmres_ir_three_precision` —
  half/single/double refinement, the paper's future-work extension.
"""

from .result import (
    ConvergenceHistory,
    MultiSolveResult,
    ResultLike,
    SolveResult,
    SolverStatus,
)
from .status import (
    LossOfAccuracyTest,
    MaxIterationsTest,
    ResidualTest,
    SolveControl,
    StagnationTest,
)
from .gmres import gmres, run_gmres_cycle, GmresWorkspace, CycleOutcome
from .gmres_ir import gmres_ir
from .gmres_fd import gmres_fd
from .cg import cg
from .ir_three_precision import gmres_ir_three_precision
from .block_gmres import (
    BlockCycleOutcome,
    BlockGmresWorkspace,
    block_gmres,
    block_gmres_ir,
    run_block_gmres_cycle,
    solve_many,
)

__all__ = [
    "ConvergenceHistory",
    "ResultLike",
    "SolveResult",
    "MultiSolveResult",
    "SolverStatus",
    "ResidualTest",
    "MaxIterationsTest",
    "LossOfAccuracyTest",
    "StagnationTest",
    "SolveControl",
    "gmres",
    "run_gmres_cycle",
    "GmresWorkspace",
    "CycleOutcome",
    "gmres_ir",
    "gmres_fd",
    "cg",
    "gmres_ir_three_precision",
    "block_gmres",
    "block_gmres_ir",
    "solve_many",
    "run_block_gmres_cycle",
    "BlockGmresWorkspace",
    "BlockCycleOutcome",
]
