"""Solver results and convergence histories.

Every solver returns a :class:`SolveResult` carrying the solution, the
status, iteration/restart counts, the per-kernel :class:`KernelTimer`
(modelled GPU seconds and wall seconds), and a
:class:`ConvergenceHistory` — the data behind the paper's convergence plots
(Figures 3 and 6) and timing tables.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from ..perfmodel.timer import KernelTimer

__all__ = [
    "SolverStatus",
    "ConvergenceHistory",
    "ResultLike",
    "SolveResult",
    "MultiSolveResult",
]


class SolverStatus(str, enum.Enum):
    """Terminal state of a solver run."""

    CONVERGED = "converged"
    MAX_ITERATIONS = "max_iterations"
    LOSS_OF_ACCURACY = "loss_of_accuracy"
    BREAKDOWN = "breakdown"
    STAGNATION = "stagnation"
    TIMED_OUT = "timed_out"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ConvergenceHistory:
    """Relative residual norms recorded during a solve.

    Two series are kept:

    * ``implicit`` — the cheap per-iteration estimate obtained from the
      Givens-rotated Hessenberg system (what GMRES monitors every iteration),
      recorded as ``(global_iteration, relative_norm)`` pairs;
    * ``explicit`` — the true residual ``||b - A x|| / ||b||`` recomputed at
      every restart / refinement step (and, for GMRES-IR, in fp64).

    The divergence of the two series is exactly the "loss of accuracy"
    phenomenon of Section V-F.
    """

    implicit_iterations: List[int] = field(default_factory=list)
    implicit_norms: List[float] = field(default_factory=list)
    explicit_iterations: List[int] = field(default_factory=list)
    explicit_norms: List[float] = field(default_factory=list)

    def record_implicit(self, iteration: int, relative_norm: float) -> None:
        self.implicit_iterations.append(int(iteration))
        self.implicit_norms.append(float(relative_norm))

    def record_explicit(self, iteration: int, relative_norm: float) -> None:
        self.explicit_iterations.append(int(iteration))
        self.explicit_norms.append(float(relative_norm))

    # -- convenience views ------------------------------------------------ #
    def implicit_series(self) -> np.ndarray:
        """``(k, 2)`` array of (iteration, relative norm) implicit samples."""
        return np.column_stack(
            [np.asarray(self.implicit_iterations, dtype=np.int64),
             np.asarray(self.implicit_norms, dtype=np.float64)]
        ) if self.implicit_iterations else np.empty((0, 2))

    def explicit_series(self) -> np.ndarray:
        """``(k, 2)`` array of (iteration, relative norm) explicit samples."""
        return np.column_stack(
            [np.asarray(self.explicit_iterations, dtype=np.int64),
             np.asarray(self.explicit_norms, dtype=np.float64)]
        ) if self.explicit_iterations else np.empty((0, 2))

    def best_explicit(self) -> float:
        """Smallest true relative residual seen (``inf`` if none recorded)."""
        return min(self.explicit_norms) if self.explicit_norms else float("inf")

    def merged_with(self, other: "ConvergenceHistory", iteration_offset: int = 0) -> "ConvergenceHistory":
        """Concatenate two histories, shifting the second one's iterations."""
        out = ConvergenceHistory(
            implicit_iterations=list(self.implicit_iterations),
            implicit_norms=list(self.implicit_norms),
            explicit_iterations=list(self.explicit_iterations),
            explicit_norms=list(self.explicit_norms),
        )
        out.implicit_iterations += [i + iteration_offset for i in other.implicit_iterations]
        out.implicit_norms += list(other.implicit_norms)
        out.explicit_iterations += [i + iteration_offset for i in other.explicit_iterations]
        out.explicit_norms += list(other.explicit_norms)
        return out


@runtime_checkable
class ResultLike(Protocol):
    """The one result surface every solve-shaped outcome satisfies.

    :class:`SolveResult` (one right-hand side), :class:`MultiSolveResult`
    (a batched block) and :class:`repro.serve.ServeResult` (one served
    request) all expose this protocol, so code consuming results — the
    serve layer, benchmarks, user callbacks — can be written once against
    it:

    * ``status`` — terminal :class:`SolverStatus` (for a batch: the
      aggregate — ``CONVERGED`` only if every column converged, otherwise
      the first non-converged column's status);
    * ``converged`` — ``status == CONVERGED`` (for a batch: all columns);
    * ``iterations`` — iteration count (per-column array for a batch);
    * ``residual_history`` — the :class:`ConvergenceHistory` (a list of
      them, one per column, for a batch);
    * ``summary()`` — one-paragraph human-readable description.

    ``isinstance(result, ResultLike)`` works at runtime (the protocol is
    ``runtime_checkable``).
    """

    @property
    def status(self) -> SolverStatus: ...

    @property
    def converged(self) -> bool: ...

    @property
    def iterations(self): ...

    @property
    def residual_history(self): ...

    def summary(self) -> str: ...


@dataclass
class SolveResult:
    """Outcome of a linear solve.

    Attributes
    ----------
    x:
        Approximate solution (in the precision the caller asked results in —
        fp64 for GMRES-IR and GMRES-FD, the working precision otherwise).
    status:
        Terminal :class:`SolverStatus`.
    iterations:
        Total inner (Arnoldi) iterations across all restarts.
    restarts:
        Number of restart cycles (for GMRES-IR: refinement steps).
    relative_residual:
        Final true relative residual ``||b - A x|| / ||b||`` in the working
        precision of the *outer* solver.
    relative_residual_fp64:
        The same quantity recomputed in fp64 — the accuracy criterion the
        paper cares about ("maintaining double precision accuracy").
    history:
        :class:`ConvergenceHistory` of the run.
    timer:
        :class:`KernelTimer` with the per-kernel modelled/wall time split.
    solver:
        Solver name (``"gmres"``, ``"gmres-ir"``, ``"gmres-fd"``, ``"cg"``).
    precision:
        Human-readable description of the precision configuration.
    details:
        Free-form extras (inner/outer iteration split, switch point, ...).
    """

    x: np.ndarray
    status: SolverStatus
    iterations: int
    restarts: int
    relative_residual: float
    relative_residual_fp64: float
    history: ConvergenceHistory
    timer: KernelTimer
    solver: str
    precision: str
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return self.status == SolverStatus.CONVERGED

    @property
    def residual_history(self) -> ConvergenceHistory:
        """:class:`ConvergenceHistory` of the run (:class:`ResultLike` name
        for the ``history`` field)."""
        return self.history

    @property
    def model_seconds(self) -> float:
        """Modelled GPU solve time (the paper's "solve time" analogue)."""
        return self.timer.total_model_seconds()

    @property
    def wall_seconds(self) -> float:
        """Host wall-clock time actually spent in the metered kernels."""
        return self.timer.total_wall_seconds()

    def kernel_breakdown(self) -> Dict[str, float]:
        """Modelled seconds per kernel label (the bars of Figures 4/7/8)."""
        return self.timer.model_seconds_by_label()

    def summary(self) -> str:
        """One-paragraph human-readable description of the run."""
        lines = [
            f"{self.solver} [{self.precision}] — {self.status.value}",
            f"  iterations: {self.iterations} in {self.restarts} cycles",
            f"  relative residual: {self.relative_residual:.3e} "
            f"(fp64 check: {self.relative_residual_fp64:.3e})",
            f"  modelled GPU time: {self.model_seconds:.4f} s; "
            f"kernel wall time: {self.wall_seconds:.4f} s",
        ]
        return "\n".join(lines)


@dataclass
class MultiSolveResult:
    """Outcome of a batched multi-right-hand-side solve.

    The block solvers advance every right-hand side through one shared
    Krylov space, so iteration counts and statuses are *per column* while
    the kernel timer is shared (the whole point of batching is that the
    kernels are amortized and cannot be attributed to a single column).

    Attributes
    ----------
    X:
        Solution block, shape ``(n, n_rhs)``, columns in the caller's
        original order (deflation reorders work internally, not results).
    statuses:
        Terminal :class:`SolverStatus` per column.
    iterations:
        Per-column iteration counts: the number of block-Arnoldi steps the
        column participated in before its convergence was detected (for a
        column whose implicit estimate converged mid-cycle, the step at
        which it first dropped below the target, as later confirmed by the
        explicit residual).
    block_iterations:
        Total block-Arnoldi steps performed (shared across columns).
    restarts:
        Restart cycles (for block GMRES-IR: refinement steps).
    relative_residuals / relative_residuals_fp64:
        Final true relative residual per column (working precision / fp64
        recheck).
    histories:
        Per-column :class:`ConvergenceHistory`.
    timer:
        Shared :class:`KernelTimer` of the batched solve.
    block_size:
        Width of the (initial) block, i.e. ``n_rhs`` per sub-block.
    """

    X: np.ndarray
    statuses: List[SolverStatus]
    iterations: np.ndarray
    block_iterations: int
    restarts: int
    relative_residuals: np.ndarray
    relative_residuals_fp64: np.ndarray
    histories: List[ConvergenceHistory]
    timer: KernelTimer
    solver: str
    precision: str
    block_size: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def n_rhs(self) -> int:
        return self.X.shape[1]

    @property
    def status(self) -> SolverStatus:
        """Aggregate terminal status (:class:`ResultLike`): ``CONVERGED``
        only if every column converged, otherwise the first non-converged
        column's status (per-column detail stays in ``statuses``)."""
        for s in self.statuses:
            if s != SolverStatus.CONVERGED:
                return s
        return SolverStatus.CONVERGED

    @property
    def converged(self) -> bool:
        """Whether *every* column converged (:class:`ResultLike` name)."""
        return all(s == SolverStatus.CONVERGED for s in self.statuses)

    @property
    def residual_history(self) -> List[ConvergenceHistory]:
        """Per-column histories (:class:`ResultLike` name for ``histories``)."""
        return self.histories

    @property
    def all_converged(self) -> bool:
        """Deprecated alias of :attr:`converged` (the divergent name from
        before the unified result protocol)."""
        warnings.warn(
            "MultiSolveResult.all_converged is deprecated; use the "
            "ResultLike-uniform MultiSolveResult.converged instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.converged

    @property
    def model_seconds(self) -> float:
        """Modelled GPU solve time of the whole batch."""
        return self.timer.total_model_seconds()

    @property
    def wall_seconds(self) -> float:
        """Host wall-clock time spent in the metered kernels (whole batch)."""
        return self.timer.total_wall_seconds()

    def column(self, c: int) -> SolveResult:
        """Per-column :class:`SolveResult` view (the timer stays shared)."""
        return SolveResult(
            x=self.X[:, c],
            status=self.statuses[c],
            iterations=int(self.iterations[c]),
            restarts=self.restarts,
            relative_residual=float(self.relative_residuals[c]),
            relative_residual_fp64=float(self.relative_residuals_fp64[c]),
            history=self.histories[c],
            timer=self.timer,
            solver=self.solver,
            precision=self.precision,
            details=dict(self.details, column=c),
        )

    def split(self) -> List[SolveResult]:
        """Demultiplex into one :class:`SolveResult` per right-hand side.

        The serve layer's fan-out: after a batched dispatch each client
        future is resolved with its own column result.  Solution vectors
        are *copied* (each client owns its result outright; the batch block
        can be reused), while histories and the shared timer are the same
        objects referenced per column.
        """
        results = []
        for c in range(self.n_rhs):
            res = self.column(c)
            res.x = np.array(res.x, copy=True)
            results.append(res)
        return results

    def summary(self) -> str:
        """Human-readable description of the batched run."""
        converged = sum(s == SolverStatus.CONVERGED for s in self.statuses)
        worst = float(np.max(self.relative_residuals)) if self.n_rhs else 0.0
        lines = [
            f"{self.solver} [{self.precision}] — "
            f"{converged}/{self.n_rhs} columns converged",
            f"  block iterations: {self.block_iterations} in {self.restarts} cycles "
            f"(block size {self.block_size})",
            f"  worst relative residual: {worst:.3e}",
            f"  modelled GPU time: {self.model_seconds:.4f} s; "
            f"kernel wall time: {self.wall_seconds:.4f} s",
        ]
        return "\n".join(lines)
