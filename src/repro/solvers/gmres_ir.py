"""GMRES-IR — GMRES with iterative refinement (the paper's Algorithm 2).

The outer loop runs in fp64 (or any chosen *outer* precision): it holds the
solution, recomputes the true residual ``r = b - A x`` after every inner
cycle, and decides convergence.  The inner solver is a full restart cycle of
GMRES(m) run entirely in fp32 (or any chosen *inner* precision) on the
correction equation ``A u = r``; its update is promoted to fp64 and added to
the solution.  This is the Turner–Walker / Carson–Higham scheme the paper
evaluates:

* two copies of the matrix are kept, one per precision (the fp64→fp32 copy
  is *excluded* from the reported solve time, as in the paper);
* the residual-vector casts between precisions at every refinement *are*
  included (they are metered through the ``cast`` kernel);
* convergence is only checked at restarts — the inner fp32 residuals "give
  little information about the convergence of the overall problem", so each
  inner cycle runs its full ``m`` iterations and GMRES-IR can spend up to
  ``m - 1`` extra iterations compared to plain GMRES;
* preconditioning, when used, is computed and applied entirely in the inner
  precision (the configuration the paper pairs with GMRES-IR).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import get_config
from ..linalg import kernels
from ..obs.probe import ProbeEvent
from ..ortho import OrthogonalizationManager, make_ortho_manager
from ..perfmodel.timer import KernelTimer, use_timer
from ..precision import Precision, as_precision
from ..preconditioners.base import IdentityPreconditioner, Preconditioner
from ..preconditioners.mixed import wrap_for_precision
from ..sparse.csr import CsrMatrix
from .gmres import (
    GmresWorkspace,
    run_gmres_cycle,
    _fp64_relative_residual,
    _resolve_gmres_workspace,
)
from .result import ConvergenceHistory, SolveResult, SolverStatus
from .status import SolveControl

__all__ = ["gmres_ir"]


def gmres_ir(
    matrix: CsrMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    inner_precision: Union[str, Precision] = "single",
    outer_precision: Union[str, Precision] = "double",
    restart: Optional[int] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    max_restarts: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    ortho: Union[str, OrthogonalizationManager] = "cgs2",
    refine_every: int = 1,
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    fp64_check: bool = True,
    workspace: Optional[GmresWorkspace] = None,
    control: Optional[SolveControl] = None,
    probe=None,
) -> SolveResult:
    """Solve ``A x = b`` with GMRES-IR (fp32 inner cycles, fp64 refinement).

    Parameters
    ----------
    matrix:
        System matrix; copies are kept in both the inner and outer precision
        (the copy itself is not charged to the solve time, following the
        paper's timing convention).
    inner_precision / outer_precision:
        The two working precisions (paper: single / double).
    restart:
        Inner restart length ``m``; refinement happens after every inner
        cycle (default 50).
    tol:
        Relative residual tolerance, evaluated on the *outer* (fp64)
        residual only (default 1e-10).
    max_iterations / max_restarts:
        Budget in inner iterations / refinement steps.
    preconditioner:
        Right preconditioner for the inner solver; it is converted (wrapped)
        to the inner precision if needed, matching the paper's "computed and
        applied entirely in fp32" configuration.
    refine_every:
        Number of inner cycles between refinements (1 in the paper; larger
        values are the ablation of refinement frequency — the inner solver
        then restarts from its own fp32 residual in between).
    timer, name, ortho, fp64_check:
        As in :func:`repro.solvers.gmres.gmres`.
    control:
        Optional :class:`~repro.solvers.SolveControl` polled at every
        refinement boundary and every ``control.check_interval`` inner
        iterations; a triggered control terminates with ``TIMED_OUT`` /
        ``CANCELLED`` / ``MAX_ITERATIONS`` and keeps the refined iterate.
    probe:
        Optional convergence probe fed one
        :class:`~repro.obs.ProbeEvent` per refinement boundary (the outer
        fp64 residual) plus a terminal event (see :mod:`repro.obs.probe`).
    """
    cfg = get_config()
    restart = cfg.restart if restart is None else int(restart)
    tol = cfg.rtol if tol is None else float(tol)
    max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
    if max_iterations is None:
        max_iterations = restart * max_restarts
    if refine_every < 1:
        raise ValueError("refine_every must be at least 1")
    inner = as_precision(inner_precision)
    outer = as_precision(outer_precision)
    if inner.bytes > outer.bytes:
        raise ValueError("inner precision must not be wider than the outer precision")
    ortho_mgr = make_ortho_manager(ortho) if isinstance(ortho, str) else ortho
    solver_name = name or f"gmres({restart})-ir-{inner.name}/{outer.name}"

    # Matrix copies in both precisions (the fp32 copy is not metered).
    A_outer = matrix.astype(outer)
    A_inner = matrix.astype(inner)
    n = A_outer.n_rows
    b_outer = np.asarray(b, dtype=outer.dtype)
    if b_outer.shape != (n,):
        raise ValueError(f"right-hand side must have length {n}")
    x = (
        np.zeros(n, dtype=outer.dtype)
        if x0 is None
        else np.asarray(x0, dtype=outer.dtype).copy()
    )

    if preconditioner is None:
        precond: Preconditioner = IdentityPreconditioner(precision=inner)
    else:
        precond = wrap_for_precision(preconditioner, inner)

    workspace = _resolve_gmres_workspace(workspace, n, restart, inner)
    history = ConvergenceHistory()
    timer = timer or KernelTimer(solver_name)

    # Pre-allocated refinement vectors, reused across all refinement steps.
    # The cross-precision buffers only exist when the precisions differ
    # (kernels.cast is a no-op returning its input at equal precision).
    w_outer = np.empty(n, dtype=outer.dtype)
    r_outer = np.empty(n, dtype=outer.dtype)
    correction = np.empty(n, dtype=inner.dtype)
    mixed = inner.dtype != outer.dtype
    r_inner_buf = np.empty(n, dtype=inner.dtype) if mixed else None
    u_buf = np.empty(n, dtype=outer.dtype) if mixed else None
    rhs_buf = np.empty(n, dtype=inner.dtype) if refine_every > 1 else None

    status = SolverStatus.MAX_ITERATIONS
    total_iterations = 0
    refinements = 0
    relative_residual = float("inf")

    with use_timer(timer):
        bnorm = kernels.norm2(b_outer)
        if bnorm == 0.0:
            if probe is not None:
                probe(ProbeEvent(
                    solver="gmres-ir",
                    kind="terminal",
                    iteration=0,
                    restarts=0,
                    residual=0.0,
                    status=SolverStatus.CONVERGED,
                ))
            return SolveResult(
                x=np.zeros(n, dtype=outer.dtype),
                status=SolverStatus.CONVERGED,
                iterations=0,
                restarts=0,
                relative_residual=0.0,
                relative_residual_fp64=0.0,
                history=history,
                timer=timer,
                solver="gmres-ir",
                precision=f"{inner.name}/{outer.name}",
                details={"restart": restart},
            )

        while True:
            # Outer (true) residual in the high precision.  The paper books
            # this under "Other" (it is part of the refinement overhead), so
            # the kernels are labelled "Residual".
            w = kernels.spmv(A_outer, x, out=w_outer, label="Residual")
            r = kernels.copy(b_outer, out=r_outer, label="Residual")
            kernels.axpy(-1.0, w, r, label="Residual")
            rnorm = kernels.norm2(r, label="Residual")
            relative_residual = rnorm / bnorm
            history.record_explicit(total_iterations, relative_residual)
            if probe is not None:
                probe(ProbeEvent(
                    solver="gmres-ir",
                    kind="refinement",
                    iteration=total_iterations,
                    restarts=refinements,
                    residual=relative_residual,
                ))

            if relative_residual <= tol:
                status = SolverStatus.CONVERGED
                break
            if not np.isfinite(relative_residual):
                # Non-finite outer residual: the iterate has been destroyed
                # (inner-precision overflow or an injected fault) — classify
                # as breakdown instead of refining NaNs forever.
                status = SolverStatus.BREAKDOWN
                break
            if control is not None:
                demanded = control.poll()
                if demanded is not None:
                    status = demanded
                    break
            if total_iterations >= max_iterations or refinements >= max_restarts:
                status = SolverStatus.MAX_ITERATIONS
                break

            # Hand the residual to the low-precision solver (metered cast).
            r_inner = kernels.cast(r, inner, out=r_inner_buf)
            rnorm_inner = kernels.norm2(r_inner)

            # Run `refine_every` inner cycles before the next refinement; the
            # standard algorithm refines after every cycle.
            correction[:] = 0
            cycle_rhs = r_inner
            cycle_rnorm = rnorm_inner
            inner_breakdown = False
            for _ in range(refine_every):
                remaining = max_iterations - total_iterations
                if remaining <= 0:
                    break
                outcome = run_gmres_cycle(
                    A_inner,
                    cycle_rhs,
                    cycle_rnorm,
                    workspace,
                    ortho=ortho_mgr,
                    preconditioner=precond,
                    absolute_target=None,  # inner residuals are not trusted
                    max_steps=min(restart, remaining),
                    control=control,
                )
                for k, implicit_abs in enumerate(outcome.implicit_norms, start=1):
                    history.record_implicit(
                        total_iterations + k, implicit_abs / bnorm
                    )
                kernels.axpy(1.0, outcome.update, correction)
                total_iterations += outcome.iterations
                if outcome.breakdown or outcome.iterations == 0:
                    inner_breakdown = True
                    break
                if refine_every > 1:
                    # Between refinements the inner solver restarts from its
                    # own low-precision residual (workspace.w is free between
                    # cycles, so the extra SpMV lands there).
                    w_in = kernels.spmv(A_inner, correction, out=workspace.w)
                    cycle_rhs = kernels.copy(r_inner, out=rhs_buf)
                    kernels.axpy(-1.0, w_in, cycle_rhs)
                    cycle_rnorm = kernels.norm2(cycle_rhs)

            # Promote the correction and update the solution in fp64.
            u = kernels.cast(correction, outer, out=u_buf)
            kernels.axpy(1.0, u, x, label="Residual")
            refinements += 1
            if inner_breakdown:
                # A lucky breakdown in the inner solver: verify on the next
                # outer residual; if it does not meet the tolerance there is
                # nothing more the inner solver can do.
                w = kernels.spmv(A_outer, x, out=w_outer, label="Residual")
                r = kernels.copy(b_outer, out=r_outer, label="Residual")
                kernels.axpy(-1.0, w, r, label="Residual")
                rnorm = kernels.norm2(r, label="Residual")
                relative_residual = rnorm / bnorm
                history.record_explicit(total_iterations, relative_residual)
                status = (
                    SolverStatus.CONVERGED
                    if relative_residual <= tol
                    else SolverStatus.BREAKDOWN
                )
                break

    if probe is not None:
        probe(ProbeEvent(
            solver="gmres-ir",
            kind="terminal",
            iteration=total_iterations,
            restarts=refinements,
            residual=relative_residual,
            status=status,
        ))
    rel64 = _fp64_relative_residual(matrix, b, x) if fp64_check else relative_residual
    return SolveResult(
        x=x,
        status=status,
        iterations=total_iterations,
        restarts=refinements,
        relative_residual=relative_residual,
        relative_residual_fp64=rel64,
        history=history,
        timer=timer,
        solver="gmres-ir",
        precision=f"{inner.name}/{outer.name}",
        details={
            "restart": restart,
            "tolerance": tol,
            "refine_every": refine_every,
            "orthogonalization": ortho_mgr.name,
            "preconditioner": precond.name,
            "inner_matrix_bytes": A_inner.storage_bytes(),
            "outer_matrix_bytes": A_outer.storage_bytes(),
            "basis_bytes": workspace.storage_bytes(),
        },
    )
