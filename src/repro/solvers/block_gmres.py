"""Block-GMRES: batched multi-right-hand-side solves on one operator.

The paper's central observation is that GMRES throughput is bandwidth
bound in its SpMV and orthogonalization kernels.  When many right-hand
sides share one matrix — the serving workload of the roadmap — the fix is
to advance a *block* of right-hand sides together:

* one ``spmm`` per block iteration streams the matrix through memory once
  for all ``k`` right-hand sides instead of once per RHS;
* orthogonalization happens against a shared Krylov basis with BLAS-3
  ``gemm`` kernels (block CGS2, :mod:`repro.ortho.block`), reading the
  basis once per pass for all ``k`` vectors;
* the ``k`` right-hand sides share one Krylov space of dimension
  ``k × steps``, so each column typically converges in far fewer (block)
  iterations than it would alone.

The module provides the cycle routine (:func:`run_block_gmres_cycle`),
the restarted driver with per-column convergence tracking and deflation
of converged columns at restarts (:func:`block_gmres`), the blocked
mixed-precision refinement wrapper (:func:`block_gmres_ir`), and the
top-level :func:`solve_many` entry point that chunks an arbitrary number
of right-hand sides into blocks.

Least squares is handled by :class:`~repro.linalg.dense.BlockGivensWorkspace`,
the band-Hessenberg generalization of the Givens machinery, which yields
the per-column *implicit* residual norms GMRES monitors every iteration.
All cycle-steady-state kernels follow the PR-2 ``out=``/``work=`` buffer
contract, so a block iteration allocates nothing once the
:class:`BlockGmresWorkspace` exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..config import get_config
from ..linalg import kernels
from ..linalg.dense import BlockGivensWorkspace
from ..linalg.multivector import MultiVector
from ..obs.probe import ProbeEvent
from ..ortho import BlockOrthogonalizationManager, make_block_ortho_manager
from ..perfmodel.timer import KernelTimer, use_timer
from ..precision import Precision, as_precision
from ..preconditioners.base import IdentityPreconditioner, Preconditioner
from ..preconditioners.mixed import wrap_for_precision
from ..sparse.csr import CsrMatrix
from .gmres import _fp64_relative_residual
from .result import ConvergenceHistory, MultiSolveResult, SolverStatus
from .status import LossOfAccuracyTest, SolveControl, StagnationTest

__all__ = [
    "BlockGmresWorkspace",
    "BlockCycleOutcome",
    "run_block_gmres_cycle",
    "block_gmres",
    "block_gmres_ir",
    "solve_many",
]


class BlockGmresWorkspace:
    """Pre-allocated storage for restarted Block-GMRES cycles.

    Holds the shared Krylov basis (``n × (restart+1)·p`` MultiVector), the
    band-Hessenberg QR workspace, and the block scratch of the
    steady-state iteration (residual / preconditioner / update blocks and
    the per-step implicit-norm table), all in the working precision — the
    block analogue of :class:`~repro.solvers.gmres.GmresWorkspace`.

    Deflation shrinks the *active* block width ``k`` below ``block_size``
    between cycles; all block buffers are sliced to the active width
    (leading columns of Fortran-ordered blocks stay contiguous), and the
    few width-dependent C-contiguous scratch blocks are cached per ``k``
    (reallocated once per deflation event, never per iteration).
    """

    def __init__(self, n: int, restart: int, block_size: int, precision) -> None:
        if restart <= 0 or block_size <= 0:
            raise ValueError("restart and block_size must be positive")
        self.precision = as_precision(precision)
        self.restart = int(restart)
        self.block_size = int(block_size)
        dtype = self.precision.dtype
        capacity = (self.restart + 1) * self.block_size
        self.basis = MultiVector(n, capacity, self.precision)
        self.givens = BlockGivensWorkspace(
            self.restart * self.block_size, self.block_size, dtype=dtype
        )
        self.W = np.empty((n, self.block_size), dtype=dtype, order="F")
        self.R = np.empty((n, self.block_size), dtype=dtype, order="F")
        self.Z = np.empty((n, self.block_size), dtype=dtype, order="F")
        self.update = np.empty((n, self.block_size), dtype=dtype, order="F")
        #: per-(block step, column) implicit residual norms of the cycle
        self.implicit = np.empty((self.restart, self.block_size), dtype=np.float64)
        self._gemm_work: dict = {}
        self._ycoef: dict = {}

    def gemm_work(self, k: int) -> np.ndarray:
        """C-contiguous ``(n, k)`` scratch for the BLAS-3 update kernels."""
        buf = self._gemm_work.get(k)
        if buf is None:
            buf = self._gemm_work[k] = np.empty(
                (self.basis.length, k), dtype=self.precision.dtype
            )
        return buf

    def ycoef(self, k: int) -> np.ndarray:
        """C-contiguous ``(restart·k, k)`` coefficient buffer for the LS solve."""
        buf = self._ycoef.get(k)
        if buf is None:
            buf = self._ycoef[k] = np.empty(
                (self.restart * k, k), dtype=self.precision.dtype
            )
        return buf

    def storage_bytes(self) -> int:
        """Device memory held by the Krylov basis (for OOM checks)."""
        return self.basis.storage_bytes()

    def accommodates(self, n: int, restart: int, block_size: int, precision) -> bool:
        """True if this workspace can run a solve of the given shape.

        A workspace is reusable for any solve on the same vector length
        and precision whose restart and block width do not exceed the
        capacities it was built with — every cycle buffer is sliced to the
        active width, so a wider pooled workspace yields bit-identical
        numerics to a fresh exact-size one.
        """
        return (
            self.basis.length == n
            and self.restart >= restart
            and self.block_size >= block_size
            and self.precision.dtype == as_precision(precision).dtype
        )


def _resolve_workspace(
    workspace: Optional[BlockGmresWorkspace],
    n: int,
    restart: int,
    block_size: int,
    precision,
) -> BlockGmresWorkspace:
    """Validate a caller-provided workspace or allocate a fresh one.

    The batch-entry hook of the serve layer: an
    :class:`~repro.serve.OperatorSession` owns a pool of pre-allocated
    workspaces and passes one in per dispatch, so steady-state serving
    allocates no Krylov storage (the PR-2 allocation-free contract extended
    across whole solves).
    """
    if workspace is None:
        return BlockGmresWorkspace(n, restart, block_size, precision)
    if not workspace.accommodates(n, restart, block_size, precision):
        raise ValueError(
            f"provided workspace (n={workspace.basis.length}, "
            f"restart={workspace.restart}, block_size={workspace.block_size}, "
            f"precision={workspace.precision.name}) cannot accommodate a "
            f"solve with n={n}, restart={restart}, block_size={block_size}, "
            f"precision={as_precision(precision).name}"
        )
    return workspace


@dataclass
class BlockCycleOutcome:
    """Result of one Block-GMRES restart cycle.

    ``update`` and ``implicit`` are views into workspace scratch, valid
    only until the next cycle runs on the same workspace.
    """

    update: np.ndarray  # (n, k) solution-update block
    iterations: int  # block steps performed
    implicit: np.ndarray = field(default=None)  # (iterations, k) absolute norms
    breakdown: bool = False
    implicit_converged: bool = False


def run_block_gmres_cycle(
    matrix: CsrMatrix,
    R: np.ndarray,
    workspace: BlockGmresWorkspace,
    *,
    ortho: BlockOrthogonalizationManager,
    preconditioner: Preconditioner,
    absolute_targets: Optional[np.ndarray] = None,
    max_steps: Optional[int] = None,
    control: Optional[SolveControl] = None,
) -> BlockCycleOutcome:
    """Run one restart cycle of Block-GMRES and return the update block.

    Parameters
    ----------
    matrix:
        System matrix in the working precision.
    R:
        Current residual block ``B - A X`` (n × k), already in the working
        precision.  Not modified.
    workspace:
        Pre-allocated basis, band-Givens and block scratch; ``k`` may be
        anything up to ``workspace.block_size`` (deflation shrinks it).
    ortho:
        Block orthogonalization manager (block CGS2 by default).
    preconditioner:
        Right preconditioner in the working precision, applied column by
        column (preconditioners are vector operators; the matrix product
        they feed is still batched).
    absolute_targets:
        Per-column absolute implicit-residual targets; the cycle stops
        early once *every* column's estimate is below its target (columns
        share the basis, so none can leave mid-cycle).  ``None`` runs all
        steps (the GMRES-IR inner-cycle convention).
    max_steps:
        Optional cap below the restart length.
    control:
        Optional whole-block :class:`~repro.solvers.SolveControl` polled
        every ``control.check_interval`` block steps; when triggered the
        cycle ends early and still returns the partial update.
    """
    dtype = workspace.precision.dtype
    if matrix.dtype != dtype:
        raise TypeError(
            f"matrix precision {matrix.dtype.name} does not match the "
            f"workspace precision {dtype.name}"
        )
    if R.ndim != 2 or R.shape[0] != matrix.n_rows:
        raise ValueError("residual block has wrong shape")
    if R.dtype != dtype:
        raise TypeError("residual precision does not match the workspace precision")
    k = R.shape[1]
    if k <= 0 or k > workspace.block_size:
        raise ValueError(
            f"block width {k} out of range (workspace block size "
            f"{workspace.block_size})"
        )

    basis = workspace.basis
    givens = workspace.givens
    basis.reset()
    steps = workspace.restart if max_steps is None else min(max_steps, workspace.restart)
    if steps <= 0:
        workspace.update[:, :k] = 0
        return BlockCycleOutcome(
            update=workspace.update[:, :k],
            iterations=0,
            implicit=workspace.implicit[:0, :k],
        )

    # Seed the basis with the QR of the residual block: V₀ S = R.
    basis.column_block(0, k)[:] = R
    s_panel, breakdown = ortho.orthogonalize_block(basis, 0, k)
    basis.set_count(k)
    givens.reset(s_panel[:k, :k])

    implicit = workspace.implicit
    iterations = 0
    implicit_converged = False

    for j in range(steps):
        v_block = basis.column_block(j * k, k)
        if preconditioner.is_identity:
            z_block = v_block
        else:
            z_block = preconditioner.apply_block(v_block, out=workspace.Z[:, :k])
        # One SpMM advances every column; it writes straight into the next
        # basis block (a contiguous view of the Fortran-ordered storage).
        kernels.spmm(matrix, z_block, out=basis.column_block((j + 1) * k, k))
        panel, step_breakdown = ortho.orthogonalize_block(basis, (j + 1) * k, k)
        breakdown = breakdown or step_breakdown
        givens.append_block(panel)
        basis.set_count((j + 2) * k)
        givens.residual_norms(out=implicit[j, :k])
        iterations += 1
        if control is not None:
            control.charge(1)
        if absolute_targets is not None and np.all(
            implicit[j, :k] <= absolute_targets
        ):
            implicit_converged = True
            break
        if (
            control is not None
            and iterations % control.check_interval == 0
            and control.poll() is not None
        ):
            break

    y = givens.solve(out=workspace.ycoef(k)[: iterations * k])
    update = basis.combine_block(
        y, j=iterations * k, out=workspace.update[:, :k], work=workspace.gemm_work(k)
    )
    if not preconditioner.is_identity:
        update = preconditioner.apply_block(update, out=workspace.Z[:, :k])
    return BlockCycleOutcome(
        update=update,
        iterations=iterations,
        implicit=implicit[:iterations, :k],
        breakdown=breakdown,
        implicit_converged=implicit_converged,
    )


class _ColumnTracker:
    """Per-right-hand-side bookkeeping shared by the block drivers.

    Maintains the compacted *active* buffers (deflation removes converged
    columns by shifting the survivors left, so the kernels always see
    contiguous leading columns) and the per-original-column statuses,
    iteration counts and histories.
    """

    def __init__(self, B: np.ndarray, X0: Optional[np.ndarray], dtype) -> None:
        n, p = B.shape
        self.n, self.p = n, p
        # Always a fresh copy: compact() shifts columns in place, and
        # np.asfortranarray would alias a caller block that is already
        # Fortran-ordered in the working dtype.
        self.B = np.array(B, dtype=dtype, order="F", copy=True)
        self.X = np.zeros((n, p), dtype=dtype, order="F")
        if X0 is not None:
            self.X[:] = np.asarray(X0, dtype=dtype).reshape(n, p)
        self.final_X = np.zeros((n, p), dtype=dtype, order="F")
        self.bnorms = np.zeros(p)
        self.active = list(range(p))
        self.statuses: List[Optional[SolverStatus]] = [None] * p
        self.iterations = np.zeros(p, dtype=np.int64)
        self.steps_alive = np.zeros(p, dtype=np.int64)
        self.hit_at = np.full(p, -1, dtype=np.int64)
        self.histories = [ConvergenceHistory() for _ in range(p)]
        self.rel = np.full(p, np.inf)

    @property
    def k(self) -> int:
        return len(self.active)

    def finalize(self, i: int, status: SolverStatus) -> None:
        """Record the terminal status of active slot ``i`` (no compaction)."""
        col = self.active[i]
        self.statuses[col] = status
        if status == SolverStatus.CONVERGED and self.hit_at[col] >= 0:
            self.iterations[col] = self.hit_at[col]
        else:
            self.iterations[col] = self.steps_alive[col]
        self.final_X[:, col] = self.X[:, i]

    def finalize_all(self, status: SolverStatus) -> None:
        for i in range(self.k - 1, -1, -1):
            self.finalize(i, status)
        self.active = []

    def compact(self, extras=()) -> None:
        """Drop finalized columns; shift survivors into the leading slots.

        ``extras`` are companion ``(n, ≥k)`` blocks (e.g. the residual
        block just computed) whose leading columns track the active set
        and must be shifted identically.
        """
        keep = [i for i, col in enumerate(self.active) if self.statuses[col] is None]
        if len(keep) == self.k:
            return
        self.X[:, : len(keep)] = self.X[:, keep]
        self.B[:, : len(keep)] = self.B[:, keep]
        self.bnorms[: len(keep)] = self.bnorms[keep]
        for extra in extras:
            extra[:, : len(keep)] = extra[:, keep]
        self.active = [self.active[i] for i in keep]


def _status_counts(statuses: Sequence[SolverStatus]) -> dict:
    """Per-status column counts for block terminal probe events."""
    counts: dict = {}
    for status in statuses:
        counts[status.name] = counts.get(status.name, 0) + 1
    return counts


def _resolve_controls(
    controls: Optional[Sequence[Optional[SolveControl]]], p: int
) -> Optional[List[Optional[SolveControl]]]:
    """Validate the per-column control list of a batched solve."""
    if controls is None:
        return None
    controls = list(controls)
    if len(controls) != p:
        raise ValueError(
            f"controls must have one entry per right-hand side "
            f"({len(controls)} given for {p} columns)"
        )
    return controls


def block_gmres(
    matrix: CsrMatrix,
    B: np.ndarray,
    X0: Optional[np.ndarray] = None,
    *,
    precision: Union[str, Precision, None] = None,
    restart: Optional[int] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    max_restarts: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    ortho: Union[str, BlockOrthogonalizationManager] = "bcgs2",
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    loss_of_accuracy_check: bool = True,
    stagnation: Optional[StagnationTest] = None,
    fp64_check: bool = True,
    workspace: Optional[BlockGmresWorkspace] = None,
    control: Optional[SolveControl] = None,
    controls: Optional[Sequence[Optional[SolveControl]]] = None,
    probe=None,
) -> MultiSolveResult:
    """Solve ``A X = B`` for a block of right-hand sides with Block-GMRES.

    The ``k`` columns of ``B`` share one Krylov basis: every block
    iteration performs one batched ``spmm`` and BLAS-3 block CGS2, and the
    band-Hessenberg least-squares problem yields a per-column implicit
    residual estimate every iteration.  At every restart the true residual
    of each column is recomputed; columns that meet the tolerance are
    **deflated** — their solution is frozen and the remaining columns
    continue in a narrower block.

    Parameters mirror :func:`repro.solvers.gmres.gmres`, with:

    B:
        Right-hand-side block ``(n, k)`` (a 1-D vector is treated as one
        column).
    restart:
        Number of *block* iterations per cycle: each column sees a Krylov
        space of dimension ``k × restart`` per cycle (memory grows
        accordingly — ``(restart+1)·k`` basis vectors).
    max_iterations:
        Budget in block iterations (default ``restart · max_restarts``).
    stagnation:
        Optional :class:`StagnationTest` template; each column gets an
        independent copy (patience/min_reduction are taken from it), and a
        column that stagnates is deflated with
        ``SolverStatus.STAGNATION`` while the others continue.
    workspace:
        Optional pre-allocated :class:`BlockGmresWorkspace` to reuse (it
        must accommodate this solve's shape — see
        :meth:`BlockGmresWorkspace.accommodates`).  The serve layer pools
        workspaces per block width so repeated dispatches on one operator
        allocate no Krylov storage; numerics are bit-identical to a fresh
        workspace.
    control:
        Optional whole-solve :class:`~repro.solvers.SolveControl` — polled
        at every restart boundary (and every ``check_interval`` block
        steps inside a cycle); when triggered *every* remaining column is
        finalized with the demanded status.
    controls:
        Optional per-column control list (one entry per right-hand side,
        entries may be ``None``).  A triggered column is **deflated** at
        the next restart boundary — its partial iterate is frozen with
        status ``TIMED_OUT`` / ``CANCELLED`` / ``MAX_ITERATIONS`` while
        the other columns keep iterating.  This is how the serve layer
        cancels one request of an in-flight batch within one restart
        cycle without disturbing its batchmates.
    probe:
        Optional convergence probe fed one
        :class:`~repro.obs.ProbeEvent` per restart boundary — the worst
        explicit relative residual over the columns active entering the
        boundary, plus how many columns were deflated at it — and one
        terminal event with the per-status column counts in
        ``extra["statuses"]`` (see :mod:`repro.obs.probe`).

    Returns
    -------
    MultiSolveResult
        Per-column statuses, iteration counts and histories; the kernel
        timer is shared by the whole block.
    """
    cfg = get_config()
    restart = cfg.restart if restart is None else int(restart)
    tol = cfg.rtol if tol is None else float(tol)
    max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
    if max_iterations is None:
        max_iterations = restart * max_restarts
    prec = as_precision(precision if precision is not None else matrix.dtype)
    ortho_mgr = make_block_ortho_manager(ortho) if isinstance(ortho, str) else ortho

    B = np.asarray(B)
    if B.ndim == 1:
        B = B.reshape(-1, 1)
    n = matrix.n_rows
    if B.shape[0] != n:
        raise ValueError(f"right-hand-side block must have {n} rows")
    p = B.shape[1]
    if p == 0:
        raise ValueError("right-hand-side block has no columns")
    solver_name = name or f"block-gmres({restart}x{p})-{prec.name}"

    A = matrix.astype(prec)
    if preconditioner is None:
        precond: Preconditioner = IdentityPreconditioner(precision=prec)
    else:
        precond = wrap_for_precision(preconditioner, prec)

    workspace = _resolve_workspace(workspace, n, restart, p, prec)
    timer = timer or KernelTimer(solver_name)
    loa = LossOfAccuracyTest(tolerance=tol) if loss_of_accuracy_check else None
    stagnation_tests = (
        [
            StagnationTest(
                patience=stagnation.patience, min_reduction=stagnation.min_reduction
            )
            for _ in range(p)
        ]
        if stagnation is not None
        else None
    )

    controls = _resolve_controls(controls, p)
    tracker = _ColumnTracker(B, X0, prec.dtype)
    pending_implicit = np.full(p, np.nan)
    total_block_iterations = 0
    restarts = 0
    rnorm = np.zeros(p)

    with use_timer(timer):
        for c in range(p):
            tracker.bnorms[c] = kernels.norm2(tracker.B[:, c])
            if tracker.bnorms[c] == 0.0:
                # Zero right-hand side: the zero vector is the solution.
                tracker.X[:, c] = 0
                tracker.rel[c] = 0.0
        # Deflate zero columns before the first cycle.
        for i in range(p - 1, -1, -1):
            if tracker.bnorms[i] == 0.0:
                tracker.finalize(i, SolverStatus.CONVERGED)
        tracker.compact()

        while tracker.active:
            k = tracker.k
            # True residual block R = B - A X for the active columns.
            w_block = kernels.spmm(A, tracker.X[:, :k], out=workspace.W[:, :k])
            for i in range(k):
                r = kernels.copy(tracker.B[:, i], out=workspace.R[:, i])
                kernels.axpy(-1.0, w_block[:, i], r)
                rnorm[i] = kernels.norm2(r)

            for i, col in enumerate(tracker.active):
                rel = rnorm[i] / tracker.bnorms[i]
                tracker.rel[col] = rel
                tracker.histories[col].record_explicit(
                    int(tracker.steps_alive[col]), rel
                )
                demanded = (
                    controls[col].poll()
                    if controls is not None and controls[col] is not None
                    else None
                )
                if rel <= tol:
                    tracker.finalize(i, SolverStatus.CONVERGED)
                elif not np.isfinite(rel):
                    # A NaN/Inf column cannot recover (and would poison the
                    # shared basis): classify it and deflate.
                    tracker.finalize(i, SolverStatus.BREAKDOWN)
                elif demanded is not None:
                    tracker.finalize(i, demanded)
                elif (
                    loa is not None
                    and np.isfinite(pending_implicit[col])
                    and loa.triggered(
                        pending_implicit[col] / tracker.bnorms[i], rel
                    )
                ):
                    tracker.finalize(i, SolverStatus.LOSS_OF_ACCURACY)
                elif stagnation_tests is not None and stagnation_tests[col].update(rel):
                    tracker.finalize(i, SolverStatus.STAGNATION)
            if probe is not None:
                entering = [tracker.rel[col] for col in tracker.active]
            tracker.compact(extras=(workspace.R,))
            if probe is not None:
                probe(ProbeEvent(
                    solver="block-gmres",
                    kind="restart",
                    iteration=total_block_iterations,
                    restarts=restarts,
                    residual=float(max(entering)),
                    active=tracker.k,
                    deflated=len(entering) - tracker.k,
                ))
            if not tracker.active:
                break
            if control is not None:
                demanded = control.poll()
                if demanded is not None:
                    tracker.finalize_all(demanded)
                    break
            if total_block_iterations >= max_iterations or restarts >= max_restarts:
                tracker.finalize_all(SolverStatus.MAX_ITERATIONS)
                break

            k = tracker.k
            targets = tol * tracker.bnorms[:k]
            remaining = max_iterations - total_block_iterations
            outcome = run_block_gmres_cycle(
                A,
                workspace.R[:, :k],
                workspace,
                ortho=ortho_mgr,
                preconditioner=precond,
                absolute_targets=targets,
                max_steps=min(restart, remaining),
                control=control,
            )
            for i, col in enumerate(tracker.active):
                if controls is not None and controls[col] is not None:
                    controls[col].charge(outcome.iterations)
                base = int(tracker.steps_alive[col])
                hit = -1
                for step in range(outcome.iterations):
                    implicit_abs = float(outcome.implicit[step, i])
                    tracker.histories[col].record_implicit(
                        base + step + 1, implicit_abs / tracker.bnorms[i]
                    )
                    if hit < 0 and implicit_abs <= targets[i]:
                        hit = base + step + 1
                # Only trust the first hit if the estimate stayed below the
                # target through the end of the cycle (it is confirmed by
                # the explicit residual at the next restart).
                if (
                    hit >= 0
                    and outcome.iterations > 0
                    and float(outcome.implicit[outcome.iterations - 1, i])
                    <= targets[i]
                ):
                    tracker.hit_at[col] = hit
                else:
                    tracker.hit_at[col] = -1
                if outcome.iterations > 0:
                    pending_implicit[col] = float(
                        outcome.implicit[outcome.iterations - 1, i]
                    )
                tracker.steps_alive[col] += outcome.iterations
            for i in range(k):
                kernels.axpy(1.0, outcome.update[:, i], tracker.X[:, i])
            total_block_iterations += outcome.iterations
            restarts += 1
            if outcome.iterations == 0:
                # Defensive: no progress possible (e.g. zero residual cycle).
                tracker.finalize_all(SolverStatus.BREAKDOWN)
                break

    rel_fp64 = np.empty(p)
    for col in range(p):
        rel_fp64[col] = (
            _fp64_relative_residual(matrix, B[:, col], tracker.final_X[:, col])
            if fp64_check
            else tracker.rel[col]
        )
    statuses = [s if s is not None else SolverStatus.MAX_ITERATIONS
                for s in tracker.statuses]
    if probe is not None:
        probe(ProbeEvent(
            solver="block-gmres",
            kind="terminal",
            iteration=total_block_iterations,
            restarts=restarts,
            residual=float(np.max(tracker.rel)),
            active=0,
            deflated=0,
            extra={"statuses": _status_counts(statuses)},
        ))
    return MultiSolveResult(
        X=tracker.final_X,
        statuses=statuses,
        iterations=tracker.iterations.copy(),
        block_iterations=total_block_iterations,
        restarts=restarts,
        relative_residuals=tracker.rel.copy(),
        relative_residuals_fp64=rel_fp64,
        histories=tracker.histories,
        timer=timer,
        solver="block-gmres",
        precision=prec.name,
        block_size=p,
        details={
            "restart": restart,
            "tolerance": tol,
            "orthogonalization": ortho_mgr.name,
            "preconditioner": precond.name,
            "basis_bytes": workspace.storage_bytes(),
        },
    )


def block_gmres_ir(
    matrix: CsrMatrix,
    B: np.ndarray,
    X0: Optional[np.ndarray] = None,
    *,
    inner_precision: Union[str, Precision] = "single",
    outer_precision: Union[str, Precision] = "double",
    restart: Optional[int] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    max_restarts: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    ortho: Union[str, BlockOrthogonalizationManager] = "bcgs2",
    refine_every: int = 1,
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    fp64_check: bool = True,
    workspace: Optional[BlockGmresWorkspace] = None,
    control: Optional[SolveControl] = None,
    controls: Optional[Sequence[Optional[SolveControl]]] = None,
    probe=None,
) -> MultiSolveResult:
    """Batched GMRES-IR: blocked fp32 inner cycles with fp64 refinement.

    The blocked analogue of :func:`repro.solvers.gmres_ir.gmres_ir`: the
    outer loop holds the solution block in the outer precision, recomputes
    the true residual block with one batched ``spmm`` per refinement, and
    deflates converged columns; each refinement runs ``refine_every``
    full Block-GMRES cycles in the inner precision on the correction
    system ``A U = R`` (inner implicit residuals are not trusted for
    convergence, exactly as in the single-vector solver).

    ``control`` / ``controls`` behave as in :func:`block_gmres`: a
    whole-solve token finalizes every remaining column when triggered, a
    per-column token deflates just its column at the next refinement
    boundary.  ``probe`` behaves as in :func:`block_gmres` with
    ``kind="refinement"`` events at the outer refinement boundaries.
    """
    cfg = get_config()
    restart = cfg.restart if restart is None else int(restart)
    tol = cfg.rtol if tol is None else float(tol)
    max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
    if max_iterations is None:
        max_iterations = restart * max_restarts
    if refine_every < 1:
        raise ValueError("refine_every must be at least 1")
    inner = as_precision(inner_precision)
    outer = as_precision(outer_precision)
    if inner.bytes > outer.bytes:
        raise ValueError("inner precision must not be wider than the outer precision")
    ortho_mgr = make_block_ortho_manager(ortho) if isinstance(ortho, str) else ortho

    B = np.asarray(B)
    if B.ndim == 1:
        B = B.reshape(-1, 1)
    n = matrix.n_rows
    if B.shape[0] != n:
        raise ValueError(f"right-hand-side block must have {n} rows")
    p = B.shape[1]
    if p == 0:
        raise ValueError("right-hand-side block has no columns")
    solver_name = name or f"block-gmres({restart}x{p})-ir-{inner.name}/{outer.name}"

    A_outer = matrix.astype(outer)
    A_inner = matrix.astype(inner)
    if preconditioner is None:
        precond: Preconditioner = IdentityPreconditioner(precision=inner)
    else:
        precond = wrap_for_precision(preconditioner, inner)

    workspace = _resolve_workspace(workspace, n, restart, p, inner)
    timer = timer or KernelTimer(solver_name)

    controls = _resolve_controls(controls, p)
    tracker = _ColumnTracker(B, X0, outer.dtype)
    # Refinement-block scratch, reused across all refinement steps.
    w_outer = np.empty((n, p), dtype=outer.dtype, order="F")
    r_outer = np.empty((n, p), dtype=outer.dtype, order="F")
    correction = np.empty((n, p), dtype=inner.dtype, order="F")
    mixed = inner.dtype != outer.dtype
    r_inner_buf = np.empty((n, p), dtype=inner.dtype, order="F") if mixed else None
    u_buf = np.empty((n, p), dtype=outer.dtype, order="F") if mixed else None
    rhs_buf = (
        np.empty((n, p), dtype=inner.dtype, order="F") if refine_every > 1 else None
    )
    rnorm = np.zeros(p)
    total_block_iterations = 0
    refinements = 0

    with use_timer(timer):
        for c in range(p):
            tracker.bnorms[c] = kernels.norm2(tracker.B[:, c])
            if tracker.bnorms[c] == 0.0:
                tracker.X[:, c] = 0
                tracker.rel[c] = 0.0
        for i in range(p - 1, -1, -1):
            if tracker.bnorms[i] == 0.0:
                tracker.finalize(i, SolverStatus.CONVERGED)
        tracker.compact()

        while tracker.active:
            k = tracker.k
            # Outer (true) residual block in the high precision; booked
            # under "Residual" like the single-vector GMRES-IR.
            w_block = kernels.spmm(
                A_outer, tracker.X[:, :k], out=w_outer[:, :k], label="Residual"
            )
            for i in range(k):
                r = kernels.copy(tracker.B[:, i], out=r_outer[:, i], label="Residual")
                kernels.axpy(-1.0, w_block[:, i], r, label="Residual")
                rnorm[i] = kernels.norm2(r, label="Residual")

            for i, col in enumerate(tracker.active):
                rel = rnorm[i] / tracker.bnorms[i]
                tracker.rel[col] = rel
                tracker.histories[col].record_explicit(
                    int(tracker.steps_alive[col]), rel
                )
                demanded = (
                    controls[col].poll()
                    if controls is not None and controls[col] is not None
                    else None
                )
                if rel <= tol:
                    tracker.finalize(i, SolverStatus.CONVERGED)
                elif not np.isfinite(rel):
                    tracker.finalize(i, SolverStatus.BREAKDOWN)
                elif demanded is not None:
                    tracker.finalize(i, demanded)
            if probe is not None:
                entering = [tracker.rel[col] for col in tracker.active]
            tracker.compact(extras=(r_outer,))
            if probe is not None:
                probe(ProbeEvent(
                    solver="block-gmres-ir",
                    kind="refinement",
                    iteration=total_block_iterations,
                    restarts=refinements,
                    residual=float(max(entering)),
                    active=tracker.k,
                    deflated=len(entering) - tracker.k,
                ))
            if not tracker.active:
                break
            if control is not None:
                demanded = control.poll()
                if demanded is not None:
                    tracker.finalize_all(demanded)
                    break
            if total_block_iterations >= max_iterations or refinements >= max_restarts:
                tracker.finalize_all(SolverStatus.MAX_ITERATIONS)
                break

            k = tracker.k
            # Hand the residual block to the low-precision solver.
            if mixed:
                for i in range(k):
                    kernels.cast(r_outer[:, i], inner, out=r_inner_buf[:, i])
                r_inner = r_inner_buf[:, :k]
            else:
                r_inner = r_outer[:, :k]

            correction[:, :k] = 0
            cycle_rhs = r_inner
            inner_breakdown = False
            for _ in range(refine_every):
                remaining = max_iterations - total_block_iterations
                if remaining <= 0:
                    break
                outcome = run_block_gmres_cycle(
                    A_inner,
                    cycle_rhs,
                    workspace,
                    ortho=ortho_mgr,
                    preconditioner=precond,
                    absolute_targets=None,  # inner residuals are not trusted
                    max_steps=min(restart, remaining),
                    control=control,
                )
                for i, col in enumerate(tracker.active):
                    if controls is not None and controls[col] is not None:
                        controls[col].charge(outcome.iterations)
                    base = int(tracker.steps_alive[col])
                    for step in range(outcome.iterations):
                        tracker.histories[col].record_implicit(
                            base + step + 1,
                            float(outcome.implicit[step, i]) / tracker.bnorms[i],
                        )
                    tracker.steps_alive[col] += outcome.iterations
                for i in range(k):
                    kernels.axpy(1.0, outcome.update[:, i], correction[:, i])
                total_block_iterations += outcome.iterations
                if outcome.breakdown or outcome.iterations == 0:
                    inner_breakdown = True
                    break
                if refine_every > 1:
                    w_in = kernels.spmm(
                        A_inner, correction[:, :k], out=workspace.W[:, :k]
                    )
                    for i in range(k):
                        kernels.copy(r_inner[:, i], out=rhs_buf[:, i])
                        kernels.axpy(-1.0, w_in[:, i], rhs_buf[:, i])
                    cycle_rhs = rhs_buf[:, :k]

            # Promote the correction and update the solution block.
            for i in range(k):
                u = kernels.cast(
                    correction[:, i], outer, out=None if not mixed else u_buf[:, i]
                )
                kernels.axpy(1.0, u, tracker.X[:, i], label="Residual")
            refinements += 1
            if inner_breakdown:
                w_block = kernels.spmm(
                    A_outer, tracker.X[:, :k], out=w_outer[:, :k], label="Residual"
                )
                for i in range(tracker.k - 1, -1, -1):
                    r = kernels.copy(
                        tracker.B[:, i], out=r_outer[:, i], label="Residual"
                    )
                    kernels.axpy(-1.0, w_block[:, i], r, label="Residual")
                    rel = kernels.norm2(r, label="Residual") / tracker.bnorms[i]
                    col = tracker.active[i]
                    tracker.rel[col] = rel
                    tracker.histories[col].record_explicit(
                        int(tracker.steps_alive[col]), rel
                    )
                    tracker.finalize(
                        i,
                        SolverStatus.CONVERGED
                        if rel <= tol
                        else SolverStatus.BREAKDOWN,
                    )
                tracker.active = []
                break

    rel_fp64 = np.empty(p)
    for col in range(p):
        rel_fp64[col] = (
            _fp64_relative_residual(matrix, B[:, col], tracker.final_X[:, col])
            if fp64_check
            else tracker.rel[col]
        )
    statuses = [s if s is not None else SolverStatus.MAX_ITERATIONS
                for s in tracker.statuses]
    if probe is not None:
        probe(ProbeEvent(
            solver="block-gmres-ir",
            kind="terminal",
            iteration=total_block_iterations,
            restarts=refinements,
            residual=float(np.max(tracker.rel)),
            active=0,
            deflated=0,
            extra={"statuses": _status_counts(statuses)},
        ))
    return MultiSolveResult(
        X=tracker.final_X,
        statuses=statuses,
        iterations=tracker.iterations.copy(),
        block_iterations=total_block_iterations,
        restarts=refinements,
        relative_residuals=tracker.rel.copy(),
        relative_residuals_fp64=rel_fp64,
        histories=tracker.histories,
        timer=timer,
        solver="block-gmres-ir",
        precision=f"{inner.name}/{outer.name}",
        block_size=p,
        details={
            "restart": restart,
            "tolerance": tol,
            "refine_every": refine_every,
            "orthogonalization": ortho_mgr.name,
            "preconditioner": precond.name,
            "inner_matrix_bytes": A_inner.storage_bytes(),
            "outer_matrix_bytes": A_outer.storage_bytes(),
            "basis_bytes": workspace.storage_bytes(),
        },
    )


def solve_many(
    matrix: CsrMatrix,
    B: np.ndarray,
    X0: Optional[np.ndarray] = None,
    *,
    method: str = "gmres",
    block_size: Optional[int] = None,
    timer: Optional[KernelTimer] = None,
    workspace: Optional[BlockGmresWorkspace] = None,
    controls: Optional[Sequence[Optional[SolveControl]]] = None,
    **kwargs,
) -> MultiSolveResult:
    """Solve ``A X = B`` for many right-hand sides with the batched path.

    The serving entry point: splits the columns of ``B`` into blocks of at
    most ``block_size`` and runs each block through :func:`block_gmres`
    (``method="gmres"``) or :func:`block_gmres_ir` (``method="gmres-ir"``),
    so every block amortizes its matrix and basis traversals across its
    columns.  One shared :class:`KernelTimer` meters the whole batch.

    Parameters
    ----------
    B:
        Right-hand sides, shape ``(n, n_rhs)`` (a 1-D vector is one RHS).
    block_size:
        Maximum columns per block (default: all of them — one block).
        Memory per block is ``(restart + 1) · block_size`` basis vectors.
    method:
        ``"gmres"`` or ``"gmres-ir"``.
    workspace:
        Optional pre-allocated :class:`BlockGmresWorkspace` shared by all
        chunks (each chunk is at most ``block_size`` columns wide, so one
        workspace of that width serves the whole batch).
    controls:
        Optional per-right-hand-side :class:`~repro.solvers.SolveControl`
        list (entries may be ``None``); each chunk receives the slice for
        its columns.
    kwargs:
        Forwarded to the block driver (restart, tol, preconditioner,
        ``control`` for a whole-batch token, ...).
    """
    drivers = {
        "gmres": ("block-gmres", block_gmres),
        "block-gmres": ("block-gmres", block_gmres),
        "gmres-ir": ("block-gmres-ir", block_gmres_ir),
        "gmres_ir": ("block-gmres-ir", block_gmres_ir),
    }
    if method not in drivers:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(drivers)}"
        )
    solver_label, driver = drivers[method]

    B = np.asarray(B)
    if B.ndim == 1:
        B = B.reshape(-1, 1)
    n, p = B.shape
    if p == 0:
        raise ValueError("right-hand-side block has no columns")
    if X0 is not None:
        X0 = np.asarray(X0)
        if X0.ndim == 1:
            X0 = X0.reshape(-1, 1)
        if X0.shape != (n, p):
            raise ValueError("initial-guess block must match the right-hand sides")
    width = p if block_size is None else max(1, min(int(block_size), p))
    timer = timer or KernelTimer(f"solve-many-{solver_label}")
    controls = _resolve_controls(controls, p)

    results = []
    for start in range(0, p, width):
        stop = min(start + width, p)
        results.append(
            driver(
                matrix,
                B[:, start:stop],
                X0[:, start:stop] if X0 is not None else None,
                timer=timer,
                workspace=workspace,
                controls=controls[start:stop] if controls is not None else None,
                **kwargs,
            )
        )
    if len(results) == 1:
        merged = results[0]
        merged.details["block_size"] = width
        return merged

    X = np.concatenate([r.X for r in results], axis=1)
    rel = np.concatenate([r.relative_residuals for r in results])
    rel64 = np.concatenate([r.relative_residuals_fp64 for r in results])
    iterations = np.concatenate([r.iterations for r in results])
    statuses: List[SolverStatus] = []
    histories: List[ConvergenceHistory] = []
    for r in results:
        statuses.extend(r.statuses)
        histories.extend(r.histories)
    details = dict(results[0].details)
    details["block_size"] = width
    details["n_blocks"] = len(results)
    return MultiSolveResult(
        X=X,
        statuses=statuses,
        iterations=iterations,
        block_iterations=sum(r.block_iterations for r in results),
        restarts=sum(r.restarts for r in results),
        relative_residuals=rel,
        relative_residuals_fp64=rel64,
        histories=histories,
        timer=timer,
        solver=solver_label,
        precision=results[0].precision,
        block_size=width,
        details=details,
    )
