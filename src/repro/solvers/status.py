"""Status tests — the convergence / termination logic of the solvers.

Modelled on Belos' status-test classes: the solver consults a small set of
composable tests after every iteration (implicit residual) and after every
restart (explicit residual).  The split between implicit and explicit
residual tests is what makes the Section V-F "loss of accuracy" phenomenon
observable: a solver whose implicit residual says "converged" while the
recomputed true residual disagrees by a large factor has been misled by
rounding error (in the paper: by an aggressive fp32 polynomial
preconditioner).

:class:`SolveControl` is the externally-driven member of the family: a
cooperative deadline / cancellation / iteration-budget token the serve
layer threads through a solve so a caller can bound its wall-clock or
abandon it mid-flight.  The solvers consult it at every restart boundary
and every few inner iterations (``check_interval``), so cancellation
latency is bounded by a handful of Arnoldi steps, not a whole solve.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from .result import SolverStatus

__all__ = [
    "ResidualTest",
    "MaxIterationsTest",
    "LossOfAccuracyTest",
    "StagnationTest",
    "SolveControl",
]


class SolveControl:
    """Cooperative deadline / cancellation / iteration-budget token.

    One token bounds one solve (or one column of a batched solve).  The
    solvers poll it — never the other way around — so a control can only
    stop a solve at the granularity the solver checks it: every restart
    boundary plus every ``check_interval`` inner iterations.  That keeps
    the hot loop free of locks and syscalls (a poll is one monotonic-clock
    read and one unsynchronized flag read) while guaranteeing a bounded
    response time.

    Thread model: :meth:`cancel` may be called from any thread (it sets a
    :class:`threading.Event`); everything else is driven by the solving
    thread.  The token is single-use — it carries the consumed-iteration
    count of the solve it is attached to.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget from construction time (monotonic clock); the
        solve resolves with :attr:`SolverStatus.TIMED_OUT` once exceeded.
    max_iterations:
        Inner-iteration budget across the whole solve (counts iterations
        :meth:`charge`\\ d by the solver); exhaustion resolves with
        :attr:`SolverStatus.MAX_ITERATIONS`.
    check_interval:
        How many inner iterations a solver may run between polls (the
        cancellation-latency granularity; default 8).
    """

    __slots__ = ("_deadline_at", "_cancelled", "max_iterations", "check_interval", "_charged")

    def __init__(
        self,
        *,
        deadline_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        check_interval: int = 8,
    ) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self._deadline_at = (
            None if deadline_seconds is None else time.monotonic() + float(deadline_seconds)
        )
        self._cancelled = threading.Event()
        self.max_iterations = None if max_iterations is None else int(max_iterations)
        self.check_interval = int(check_interval)
        self._charged = 0

    # -- caller side --------------------------------------------------- #
    @classmethod
    def with_timeout(cls, deadline_ms: float, **kwargs) -> "SolveControl":
        """Token whose deadline is ``deadline_ms`` milliseconds from now."""
        return cls(deadline_seconds=float(deadline_ms) / 1e3, **kwargs)

    def cancel(self) -> None:
        """Request cancellation (thread-safe, idempotent).

        The solve resolves with :attr:`SolverStatus.CANCELLED` at its next
        poll — within ``check_interval`` inner iterations.
        """
        self._cancelled.set()

    # -- solver side --------------------------------------------------- #
    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute monotonic-clock deadline (``None`` when unbounded)."""
        return self._deadline_at

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unbounded; can be < 0)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def expired(self) -> bool:
        return self._deadline_at is not None and time.monotonic() >= self._deadline_at

    @property
    def iterations_charged(self) -> int:
        return self._charged

    def charge(self, iterations: int = 1) -> None:
        """Debit inner iterations against the budget (solver bookkeeping)."""
        self._charged += int(iterations)

    def poll(self) -> Optional[SolverStatus]:
        """Terminal status this control demands, or ``None`` to continue.

        Priority: ``CANCELLED`` > ``TIMED_OUT`` > ``MAX_ITERATIONS`` — an
        explicit client cancellation is reported even if the deadline also
        lapsed while the request sat in a queue.
        """
        if self._cancelled.is_set():
            return SolverStatus.CANCELLED
        if self.expired():
            return SolverStatus.TIMED_OUT
        if self.max_iterations is not None and self._charged >= self.max_iterations:
            return SolverStatus.MAX_ITERATIONS
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        remaining = self.remaining_seconds()
        return (
            f"<SolveControl cancelled={self.cancelled} "
            f"remaining={'inf' if remaining is None else f'{remaining:.3f}s'} "
            f"charged={self._charged}/{self.max_iterations or 'inf'}>"
        )


@dataclass
class ResidualTest:
    """Relative residual convergence test.

    ``tolerance`` is relative to the right-hand-side norm (the paper's
    convergence criterion ``||b - A x|| / ||b|| <= rTol`` with
    ``rTol = 1e-10``).
    """

    tolerance: float

    def passes(self, relative_norm: float) -> bool:
        return relative_norm <= self.tolerance


@dataclass
class MaxIterationsTest:
    """Caps the total number of inner iterations."""

    max_iterations: int

    def exceeded(self, iterations: int) -> bool:
        return iterations >= self.max_iterations


@dataclass
class LossOfAccuracyTest:
    """Detects divergence of the implicit and explicit residuals.

    Triggered when the implicit residual claims convergence (it is below
    ``tolerance``) but the explicitly recomputed residual is larger by more
    than ``divergence_factor``.  Belos reports this condition as a "loss of
    accuracy" of the solver; the paper hits it with high-degree fp32
    polynomial preconditioners (Section V-F).
    """

    tolerance: float
    divergence_factor: float = 10.0

    def triggered(self, implicit_norm: float, explicit_norm: float) -> bool:
        if implicit_norm > self.tolerance:
            return False
        if explicit_norm <= self.tolerance:
            return False
        return explicit_norm > self.divergence_factor * max(implicit_norm, 1e-300)


@dataclass
class StagnationTest:
    """Optional stagnation detector over restart cycles.

    Flags stagnation when the explicit residual fails to improve by at least
    ``min_reduction`` over ``patience`` consecutive restarts.  Disabled by
    default in the solvers (the paper lets stalled fp32 runs keep iterating
    and reports the floor they reach), but exposed for users who prefer an
    early exit.
    """

    patience: int = 5
    min_reduction: float = 0.99

    def __post_init__(self) -> None:
        self._best: Optional[float] = None
        self._since_improvement = 0

    def update(self, explicit_norm: float) -> bool:
        """Feed one restart's explicit residual; returns True when stagnated."""
        if self._best is None or explicit_norm < self._best * self.min_reduction:
            self._best = explicit_norm if self._best is None else min(self._best, explicit_norm)
            self._since_improvement = 0
            return False
        self._since_improvement += 1
        return self._since_improvement >= self.patience

    def reset(self) -> None:
        self._best = None
        self._since_improvement = 0
