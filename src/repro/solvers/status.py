"""Status tests — the convergence / termination logic of the solvers.

Modelled on Belos' status-test classes: the solver consults a small set of
composable tests after every iteration (implicit residual) and after every
restart (explicit residual).  The split between implicit and explicit
residual tests is what makes the Section V-F "loss of accuracy" phenomenon
observable: a solver whose implicit residual says "converged" while the
recomputed true residual disagrees by a large factor has been misled by
rounding error (in the paper: by an aggressive fp32 polynomial
preconditioner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ResidualTest",
    "MaxIterationsTest",
    "LossOfAccuracyTest",
    "StagnationTest",
]


@dataclass
class ResidualTest:
    """Relative residual convergence test.

    ``tolerance`` is relative to the right-hand-side norm (the paper's
    convergence criterion ``||b - A x|| / ||b|| <= rTol`` with
    ``rTol = 1e-10``).
    """

    tolerance: float

    def passes(self, relative_norm: float) -> bool:
        return relative_norm <= self.tolerance


@dataclass
class MaxIterationsTest:
    """Caps the total number of inner iterations."""

    max_iterations: int

    def exceeded(self, iterations: int) -> bool:
        return iterations >= self.max_iterations


@dataclass
class LossOfAccuracyTest:
    """Detects divergence of the implicit and explicit residuals.

    Triggered when the implicit residual claims convergence (it is below
    ``tolerance``) but the explicitly recomputed residual is larger by more
    than ``divergence_factor``.  Belos reports this condition as a "loss of
    accuracy" of the solver; the paper hits it with high-degree fp32
    polynomial preconditioners (Section V-F).
    """

    tolerance: float
    divergence_factor: float = 10.0

    def triggered(self, implicit_norm: float, explicit_norm: float) -> bool:
        if implicit_norm > self.tolerance:
            return False
        if explicit_norm <= self.tolerance:
            return False
        return explicit_norm > self.divergence_factor * max(implicit_norm, 1e-300)


@dataclass
class StagnationTest:
    """Optional stagnation detector over restart cycles.

    Flags stagnation when the explicit residual fails to improve by at least
    ``min_reduction`` over ``patience`` consecutive restarts.  Disabled by
    default in the solvers (the paper lets stalled fp32 runs keep iterating
    and reports the floor they reach), but exposed for users who prefer an
    early exit.
    """

    patience: int = 5
    min_reduction: float = 0.99

    def __post_init__(self) -> None:
        self._best: Optional[float] = None
        self._since_improvement = 0

    def update(self, explicit_norm: float) -> bool:
        """Feed one restart's explicit residual; returns True when stagnated."""
        if self._best is None or explicit_norm < self._best * self.min_reduction:
            self._best = explicit_norm if self._best is None else min(self._best, explicit_norm)
            self._since_improvement = 0
            return False
        self._since_improvement += 1
        return self._since_improvement >= self.patience

    def reset(self) -> None:
        self._best = None
        self._since_improvement = 0
