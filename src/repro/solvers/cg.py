"""Preconditioned conjugate gradients.

The paper focuses on GMRES (nonsymmetric systems) but explicitly names CG
as the method of choice for SPD problems and cites a companion study of
polynomial-preconditioned CG in mixed precision [17].  A metered CG is
included so the SPD problems in the test set (Laplacians, Stretched2D,
several Table III proxies) can be cross-checked against an optimal
short-recurrence method, and so the CG-vs-GMRES kernel-mix contrast
(no growing orthogonalization cost) can be benchmarked.

Left preconditioning with an SPD preconditioner (the standard PCG form) is
used; for ``M = I`` this is plain CG.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import get_config
from ..linalg import kernels
from ..obs.probe import ProbeEvent
from ..perfmodel.timer import KernelTimer, use_timer
from ..precision import Precision, as_precision
from ..preconditioners.base import IdentityPreconditioner, Preconditioner
from ..preconditioners.mixed import wrap_for_precision
from ..sparse.csr import CsrMatrix
from .gmres import _fp64_relative_residual
from .result import ConvergenceHistory, SolveResult, SolverStatus
from .status import SolveControl

__all__ = ["cg"]


def cg(
    matrix: CsrMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    precision: Union[str, Precision, None] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    explicit_residual_every: int = 50,
    fp64_check: bool = True,
    control: Optional[SolveControl] = None,
    probe=None,
) -> SolveResult:
    """Solve an SPD system ``A x = b`` with (preconditioned) conjugate gradients.

    Parameters
    ----------
    matrix:
        SPD system matrix (symmetry is not verified here — callers own that).
    precision:
        Working precision (default: the matrix's precision).
    tol:
        Relative residual tolerance on the recursively updated residual.
    max_iterations:
        Iteration cap (default: the library's restart*max_restarts budget).
    preconditioner:
        SPD preconditioner applied as ``z = M r`` each iteration (wrapped to
        the working precision if needed).
    explicit_residual_every:
        Recompute the true residual every ``k`` iterations (and at the end)
        to guard against drift of the recursive residual; mirrors the
        restart-time residual recomputation of GMRES.
    control:
        Optional :class:`~repro.solvers.SolveControl` polled every
        ``control.check_interval`` iterations; a triggered control stops
        the solve with ``TIMED_OUT`` / ``CANCELLED`` / ``MAX_ITERATIONS``
        and returns the current iterate.
    probe:
        Optional convergence probe fed one
        :class:`~repro.obs.ProbeEvent` per explicit-residual recompute
        (every ``explicit_residual_every`` iterations) plus a terminal
        event (see :mod:`repro.obs.probe`).
    """
    cfg = get_config()
    tol = cfg.rtol if tol is None else float(tol)
    if max_iterations is None:
        max_iterations = cfg.restart * cfg.max_restarts
    prec = as_precision(precision if precision is not None else matrix.dtype)
    solver_name = name or f"cg-{prec.name}"

    A = matrix.astype(prec)
    n = A.n_rows
    b_work = np.asarray(b, dtype=prec.dtype)
    if b_work.shape != (n,):
        raise ValueError(f"right-hand side must have length {n}")
    x = (
        np.zeros(n, dtype=prec.dtype)
        if x0 is None
        else np.asarray(x0, dtype=prec.dtype).copy()
    )
    if preconditioner is None:
        precond: Preconditioner = IdentityPreconditioner(precision=prec)
    else:
        precond = wrap_for_precision(preconditioner, prec)

    history = ConvergenceHistory()
    timer = timer or KernelTimer(solver_name)
    status = SolverStatus.MAX_ITERATIONS
    iterations = 0
    relative_residual = float("inf")

    with use_timer(timer):
        bnorm = kernels.norm2(b_work)
        if bnorm == 0.0:
            if probe is not None:
                probe(ProbeEvent(
                    solver="cg",
                    kind="terminal",
                    iteration=0,
                    restarts=0,
                    residual=0.0,
                    status=SolverStatus.CONVERGED,
                ))
            return SolveResult(
                x=np.zeros(n, dtype=prec.dtype),
                status=SolverStatus.CONVERGED,
                iterations=0,
                restarts=0,
                relative_residual=0.0,
                relative_residual_fp64=0.0,
                history=history,
                timer=timer,
                solver="cg",
                precision=prec.name,
                details={},
            )

        # Pre-allocated iteration vectors, reused for the whole solve (the
        # short recurrence touches the same six length-n buffers every step).
        w = np.empty_like(x)
        r = np.empty_like(x)
        p = np.empty_like(x)
        Ap = np.empty_like(x)
        r_true = np.empty_like(x)
        z_buf = None if precond.is_identity else np.empty_like(x)

        kernels.spmv(A, x, out=w)
        kernels.copy(b_work, out=r)
        kernels.axpy(-1.0, w, r)
        z = r if precond.is_identity else precond.apply(r, out=z_buf)
        kernels.copy(z, out=p)
        rz = kernels.dot(r, z)
        rnorm = kernels.norm2(r)
        relative_residual = rnorm / bnorm
        history.record_explicit(0, relative_residual)

        while iterations < max_iterations:
            if relative_residual <= tol:
                # Verify with the true residual before declaring convergence:
                # the recursive residual of low-precision CG can drift far
                # below what the iterate actually achieves.
                kernels.spmv(A, x, out=w)
                kernels.copy(b_work, out=r_true)
                kernels.axpy(-1.0, w, r_true)
                true_rel = kernels.norm2(r_true) / bnorm
                history.record_explicit(iterations, true_rel)
                if true_rel <= tol:
                    relative_residual = true_rel
                    status = SolverStatus.CONVERGED
                    break
                relative_residual = true_rel
            kernels.spmv(A, p, out=Ap)
            pAp = kernels.dot(p, Ap)
            if pAp <= 0.0:
                # Not SPD (or breakdown in low precision).
                status = SolverStatus.BREAKDOWN
                break
            alpha = rz / pAp
            kernels.axpy(alpha, p, x)
            kernels.axpy(-alpha, Ap, r)
            iterations += 1
            if control is not None:
                control.charge(1)

            if explicit_residual_every and iterations % explicit_residual_every == 0:
                kernels.spmv(A, x, out=w)
                kernels.copy(b_work, out=r_true)
                kernels.axpy(-1.0, w, r_true)
                rnorm = kernels.norm2(r_true)
                relative_residual = rnorm / bnorm
                history.record_explicit(iterations, relative_residual)
                if probe is not None:
                    probe(ProbeEvent(
                        solver="cg",
                        kind="residual",
                        iteration=iterations,
                        restarts=0,
                        residual=relative_residual,
                    ))
            else:
                rnorm = kernels.norm2(r)
                relative_residual = rnorm / bnorm
            history.record_implicit(iterations, relative_residual)

            if not np.isfinite(relative_residual):
                status = SolverStatus.BREAKDOWN
                break
            if control is not None and iterations % control.check_interval == 0:
                demanded = control.poll()
                if demanded is not None:
                    status = demanded
                    break

            z = r if precond.is_identity else precond.apply(r, out=z_buf)
            rz_new = kernels.dot(r, z)
            beta = rz_new / rz if rz != 0.0 else 0.0
            rz = rz_new
            kernels.scal(beta, p)
            kernels.axpy(1.0, z, p)
        else:
            status = SolverStatus.MAX_ITERATIONS

    if probe is not None:
        probe(ProbeEvent(
            solver="cg",
            kind="terminal",
            iteration=iterations,
            restarts=0,
            residual=relative_residual,
            status=status,
        ))
    rel64 = _fp64_relative_residual(matrix, b, x) if fp64_check else relative_residual
    return SolveResult(
        x=x,
        status=status,
        iterations=iterations,
        restarts=0,
        relative_residual=relative_residual,
        relative_residual_fp64=rel64,
        history=history,
        timer=timer,
        solver="cg",
        precision=prec.name,
        details={"tolerance": tol, "preconditioner": precond.name},
    )
