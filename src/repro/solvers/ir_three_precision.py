"""Three-precision GMRES-IR (half / single / double) — the paper's future work.

Section VI: "Since Kokkos is enabling support for half precision, we will
also study ways to incorporate a third level of precision into the
GMRES-IR solver while maintaining high accuracy."  This module implements
one natural realisation of that idea as an extension experiment:

* the **outer** loop refines in fp64 exactly as in GMRES-IR;
* the **middle** level is an fp32 GMRES-IR that itself refines
* an **inner** fp16 GMRES(m) cycle.

fp16 has a tiny dynamic range (max ≈ 65504, unit roundoff ≈ 4.9e-4), so
each residual handed to the half-precision solver is normalised to unit
norm first and the correction is rescaled afterwards — the standard scaling
safeguard for half-precision iterative refinement.  When the fp16 cycle
fails to reduce the residual at all (which happens on badly conditioned
problems), the middle level falls back to an fp32 cycle so the overall
method keeps converging; the fallback count is reported in the result
details, since "how often is fp16 actually usable" is the interesting
question this extension probes.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import get_config
from ..linalg import kernels
from ..ortho import OrthogonalizationManager, make_ortho_manager
from ..perfmodel.timer import KernelTimer, use_timer
from ..precision import Precision, as_precision
from ..preconditioners.base import IdentityPreconditioner, Preconditioner
from ..preconditioners.mixed import wrap_for_precision
from ..sparse.csr import CsrMatrix
from .gmres import GmresWorkspace, run_gmres_cycle, _fp64_relative_residual
from .result import ConvergenceHistory, SolveResult, SolverStatus

__all__ = ["gmres_ir_three_precision"]


def gmres_ir_three_precision(
    matrix: CsrMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    inner_precision: Union[str, Precision] = "half",
    middle_precision: Union[str, Precision] = "single",
    outer_precision: Union[str, Precision] = "double",
    restart: Optional[int] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    max_restarts: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    ortho: Union[str, OrthogonalizationManager] = "cgs2",
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    fp64_check: bool = True,
    improvement_threshold: float = 0.9,
) -> SolveResult:
    """Solve ``A x = b`` with half/single/double GMRES-IR.

    Parameters
    ----------
    improvement_threshold:
        An fp16 cycle is accepted when it reduces the (fp32-evaluated)
        residual of its correction equation below ``threshold`` times the
        starting norm; otherwise the cycle is redone in fp32 and counted as
        a fallback.
    Other parameters:
        As in :func:`repro.solvers.gmres_ir.gmres_ir`.
    """
    cfg = get_config()
    restart = cfg.restart if restart is None else int(restart)
    tol = cfg.rtol if tol is None else float(tol)
    max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
    if max_iterations is None:
        max_iterations = restart * max_restarts
    inner = as_precision(inner_precision)
    middle = as_precision(middle_precision)
    outer = as_precision(outer_precision)
    if not (inner.bytes <= middle.bytes <= outer.bytes):
        raise ValueError("precisions must be ordered inner <= middle <= outer")
    ortho_mgr = make_ortho_manager(ortho) if isinstance(ortho, str) else ortho
    solver_name = name or f"gmres({restart})-ir3-{inner.name}/{middle.name}/{outer.name}"

    A_outer = matrix.astype(outer)
    A_middle = matrix.astype(middle)
    A_inner = matrix.astype(inner)
    n = A_outer.n_rows
    b_outer = np.asarray(b, dtype=outer.dtype)
    x = (
        np.zeros(n, dtype=outer.dtype)
        if x0 is None
        else np.asarray(x0, dtype=outer.dtype).copy()
    )

    if preconditioner is None:
        precond_mid: Preconditioner = IdentityPreconditioner(precision=middle)
        precond_in: Preconditioner = IdentityPreconditioner(precision=inner)
    else:
        precond_mid = wrap_for_precision(preconditioner, middle)
        precond_in = wrap_for_precision(preconditioner, inner)

    ws_middle = GmresWorkspace(n, restart, middle)
    ws_inner = GmresWorkspace(n, restart, inner)
    history = ConvergenceHistory()
    timer = timer or KernelTimer(solver_name)

    # Pre-allocated refinement vectors, reused across all refinement steps.
    # Cross-precision buffers only exist when the adjacent precisions differ
    # (kernels.cast returns its input unchanged at equal precision); the
    # scaled residual and the fp32 residual check borrow the middle
    # workspace's driver scratch, which is free between cycles.
    w_outer = np.empty(n, dtype=outer.dtype)
    r_outer = np.empty(n, dtype=outer.dtype)
    r_mid_buf = np.empty(n, dtype=middle.dtype) if middle.dtype != outer.dtype else None
    r_half_buf = np.empty(n, dtype=inner.dtype) if inner.dtype != middle.dtype else None
    u_mid_buf = np.empty(n, dtype=middle.dtype) if middle.dtype != inner.dtype else None
    u_outer_buf = np.empty(n, dtype=outer.dtype) if middle.dtype != outer.dtype else None
    check_buf = np.empty(n, dtype=middle.dtype)

    status = SolverStatus.MAX_ITERATIONS
    total_iterations = 0
    refinements = 0
    half_cycles = 0
    fallback_cycles = 0
    relative_residual = float("inf")

    with use_timer(timer):
        bnorm = kernels.norm2(b_outer)
        if bnorm == 0.0:
            return SolveResult(
                x=np.zeros(n, dtype=outer.dtype),
                status=SolverStatus.CONVERGED,
                iterations=0,
                restarts=0,
                relative_residual=0.0,
                relative_residual_fp64=0.0,
                history=history,
                timer=timer,
                solver="gmres-ir3",
                precision=f"{inner.name}/{middle.name}/{outer.name}",
                details={},
            )

        while True:
            w = kernels.spmv(A_outer, x, out=w_outer, label="Residual")
            r = kernels.copy(b_outer, out=r_outer, label="Residual")
            kernels.axpy(-1.0, w, r, label="Residual")
            rnorm = kernels.norm2(r, label="Residual")
            relative_residual = rnorm / bnorm
            history.record_explicit(total_iterations, relative_residual)
            if relative_residual <= tol:
                status = SolverStatus.CONVERGED
                break
            if total_iterations >= max_iterations or refinements >= max_restarts:
                status = SolverStatus.MAX_ITERATIONS
                break

            # Middle level: one correction in fp32, itself computed either by
            # an fp16 cycle (scaled to unit norm) or by an fp32 fallback.
            r_mid = kernels.cast(r, middle, out=r_mid_buf)
            rnorm_mid = kernels.norm2(r_mid)

            # --- try the half-precision inner cycle ----------------------- #
            scale = rnorm_mid if rnorm_mid > 0 else 1.0
            r_scaled = kernels.copy(r_mid, out=ws_middle.r)
            kernels.scal(1.0 / scale, r_scaled)
            r_half = kernels.cast(r_scaled, inner, out=r_half_buf)
            rnorm_half = kernels.norm2(r_half)
            accepted = False
            if np.isfinite(rnorm_half) and rnorm_half > 0:
                outcome = run_gmres_cycle(
                    A_inner,
                    r_half,
                    rnorm_half,
                    ws_inner,
                    ortho=ortho_mgr,
                    preconditioner=precond_in,
                    absolute_target=None,
                    max_steps=min(restart, max_iterations - total_iterations),
                )
                update_half = outcome.update
                if np.all(np.isfinite(update_half)):
                    u_mid = kernels.cast(update_half, middle, out=u_mid_buf)
                    kernels.scal(scale, u_mid)
                    # Evaluate the achieved reduction in fp32.
                    w_mid = kernels.spmv(A_middle, u_mid, out=ws_middle.w)
                    check = kernels.copy(r_mid, out=check_buf)
                    kernels.axpy(-1.0, w_mid, check)
                    achieved = kernels.norm2(check)
                    if achieved <= improvement_threshold * rnorm_mid:
                        accepted = True
                        half_cycles += 1
                        total_iterations += outcome.iterations
                        for k, implicit_abs in enumerate(outcome.implicit_norms, start=1):
                            history.record_implicit(
                                total_iterations - outcome.iterations + k,
                                implicit_abs * scale / bnorm,
                            )
                        correction_mid = u_mid

            if not accepted:
                # --- fp32 fallback cycle ---------------------------------- #
                fallback_cycles += 1
                outcome = run_gmres_cycle(
                    A_middle,
                    r_mid,
                    rnorm_mid,
                    ws_middle,
                    ortho=ortho_mgr,
                    preconditioner=precond_mid,
                    absolute_target=None,
                    max_steps=min(restart, max_iterations - total_iterations),
                )
                total_iterations += outcome.iterations
                for k, implicit_abs in enumerate(outcome.implicit_norms, start=1):
                    history.record_implicit(
                        total_iterations - outcome.iterations + k, implicit_abs / bnorm
                    )
                correction_mid = outcome.update

            u = kernels.cast(correction_mid, outer, out=u_outer_buf)
            kernels.axpy(1.0, u, x, label="Residual")
            refinements += 1

    rel64 = _fp64_relative_residual(matrix, b, x) if fp64_check else relative_residual
    return SolveResult(
        x=x,
        status=status,
        iterations=total_iterations,
        restarts=refinements,
        relative_residual=relative_residual,
        relative_residual_fp64=rel64,
        history=history,
        timer=timer,
        solver="gmres-ir3",
        precision=f"{inner.name}/{middle.name}/{outer.name}",
        details={
            "restart": restart,
            "half_precision_cycles": half_cycles,
            "fp32_fallback_cycles": fallback_cycles,
            "preconditioner": precond_mid.name,
        },
    )
