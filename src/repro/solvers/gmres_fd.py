"""GMRES-FD — the "Float→Double" precision-switching solver (Section III-C).

The first inclination for a multiprecision GMRES: run restarted GMRES
entirely in fp32 for some number of iterations, then switch the whole
solver to fp64, using the fp32 solution as the initial guess.  The paper
evaluates this against GMRES-IR in Figures 1 and 2 and finds it both
awkward (the switch point must be tuned per problem) and, on some problems
(UniFlow2D), largely ineffective — the fp64 phase cannot exploit the
eigenvector information the fp32 phase built, so it almost starts over.

The implementation simply composes two :func:`repro.solvers.gmres.gmres`
runs and merges their histories and timers; the solution cast at the switch
is metered.  Each phase reuses its residual/update vectors internally via
its own :class:`~repro.solvers.gmres.GmresWorkspace` (one per precision —
the fp32 and fp64 phases cannot share buffers), so the only per-switch
allocations are the two phase workspaces and the one metered cast.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import get_config
from ..linalg import kernels
from ..ortho import OrthogonalizationManager
from ..perfmodel.timer import KernelTimer, use_timer
from ..precision import Precision, as_precision
from ..preconditioners.base import Preconditioner
from ..sparse.csr import CsrMatrix
from .gmres import gmres, _fp64_relative_residual
from .result import SolveResult, SolverStatus

__all__ = ["gmres_fd"]


def gmres_fd(
    matrix: CsrMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    switch_iteration: int,
    low_precision: Union[str, Precision] = "single",
    high_precision: Union[str, Precision] = "double",
    restart: Optional[int] = None,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    max_restarts: Optional[int] = None,
    preconditioner: Optional[Preconditioner] = None,
    ortho: Union[str, OrthogonalizationManager] = "cgs2",
    timer: Optional[KernelTimer] = None,
    name: Optional[str] = None,
    fp64_check: bool = True,
) -> SolveResult:
    """Solve ``A x = b`` with fp32 GMRES(m) switching to fp64 GMRES(m).

    Parameters
    ----------
    switch_iteration:
        Number of low-precision iterations before switching (the paper
        sweeps this in multiples of the restart length — Figures 1 and 2).
        Zero means a pure high-precision solve.
    low_precision / high_precision:
        Precisions before and after the switch (single / double in the paper).
    Everything else:
        As in :func:`repro.solvers.gmres.gmres`.  The same preconditioner
        object is used in both phases; it is wrapped to each phase's working
        precision automatically.
    """
    cfg = get_config()
    restart = cfg.restart if restart is None else int(restart)
    tol = cfg.rtol if tol is None else float(tol)
    max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
    if max_iterations is None:
        max_iterations = restart * max_restarts
    if switch_iteration < 0:
        raise ValueError("switch_iteration must be non-negative")
    low = as_precision(low_precision)
    high = as_precision(high_precision)
    solver_name = name or f"gmres({restart})-fd@{switch_iteration}"
    timer = timer or KernelTimer(solver_name)

    details: dict = {
        "switch_iteration": switch_iteration,
        "restart": restart,
        "tolerance": tol,
    }

    with use_timer(timer):
        # Phase 1: low precision, capped at the switch point.
        if switch_iteration > 0:
            low_result = gmres(
                matrix,
                b,
                x0,
                precision=low,
                restart=restart,
                tol=tol,
                max_iterations=switch_iteration,
                max_restarts=max_restarts,
                preconditioner=preconditioner,
                ortho=ortho,
                name=f"{solver_name}-low",
                fp64_check=False,
            )
            low_iterations = low_result.iterations
            x_switch = kernels.cast(low_result.x, high)
            history = low_result.history
            details["low_iterations"] = low_iterations
            details["low_final_relative_residual"] = low_result.relative_residual
            if low_result.converged:
                # Converged (to the fp32-measurable level) before the switch;
                # the fp64 phase still verifies and, if needed, polishes.
                pass
        else:
            low_iterations = 0
            x_switch = np.asarray(
                x0 if x0 is not None else np.zeros(matrix.n_rows), dtype=high.dtype
            )
            from .result import ConvergenceHistory

            history = ConvergenceHistory()

        # Phase 2: high precision from the switched initial guess.
        remaining = max(0, max_iterations - low_iterations)
        high_result = gmres(
            matrix,
            b,
            x_switch,
            precision=high,
            restart=restart,
            tol=tol,
            max_iterations=remaining,
            max_restarts=max_restarts,
            preconditioner=preconditioner,
            ortho=ortho,
            name=f"{solver_name}-high",
            fp64_check=False,
        )
        details["high_iterations"] = high_result.iterations

    merged_history = history.merged_with(high_result.history, iteration_offset=low_iterations)
    total_iterations = low_iterations + high_result.iterations
    status = high_result.status
    if status == SolverStatus.MAX_ITERATIONS and total_iterations >= max_iterations:
        status = SolverStatus.MAX_ITERATIONS

    x = high_result.x
    rel64 = _fp64_relative_residual(matrix, b, x) if fp64_check else high_result.relative_residual
    return SolveResult(
        x=x,
        status=status,
        iterations=total_iterations,
        restarts=high_result.restarts + (low_result.restarts if switch_iteration > 0 else 0),
        relative_residual=high_result.relative_residual,
        relative_residual_fp64=rel64,
        history=merged_history,
        timer=timer,
        solver="gmres-fd",
        precision=f"{low.name}->{high.name}",
        details=details,
    )
