"""Component health aggregation over SLOs, alerts and breaker states.

The :class:`HealthMonitor` is the one object that answers "is the stack
healthy?".  It owns the :class:`~repro.obs.slo.SloEngine` and the
:class:`~repro.obs.anomaly.AlertLedger`, runs the pull-side detectors
(queue saturation, breaker flapping, cost-model drift) against weakly
referenced farms and kernel timers, and folds everything into per
component states:

* ``unhealthy`` — an open circuit breaker, a critical alert inside the
  alert window, or a breached SLO (both burn windows over threshold).
* ``degraded`` — a half-open breaker, a warning alert, or the fast SLO
  window burning error budget faster than 1× while the slow window is
  still fine.
* ``healthy`` — none of the above.

The serve layer reaches the monitor through
:class:`~repro.obs.Observability` (``obs=`` on sessions and farms); the
HTTP exporter serves :meth:`healthz` as ``/healthz`` (status 503 when
overall unhealthy) and the SLO evaluation as ``/slo``.
:func:`watch_health` mirrors the same aggregation into ``repro_slo_*`` /
``repro_alert*`` / ``repro_health_state`` metrics at scrape time.

Pull-side alerts are held off per (detector, component) for
``holdoff_s`` so a persistently saturated queue produces one alert per
holdoff window, not one per scrape.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .anomaly import (
    AlertLedger,
    BreakerFlapDetector,
    ConvergenceWatch,
    LatencySpikeDetector,
    cost_model_drift,
)
from .slo import SloEngine, SloPolicy, SloStatus, SloTracker

__all__ = [
    "HEALTH_STATES",
    "ComponentHealth",
    "HealthReport",
    "HealthMonitor",
    "watch_health",
]

#: Component states, in escalation order (index = badness).
HEALTH_STATES = ("healthy", "degraded", "unhealthy")


@dataclass(frozen=True)
class ComponentHealth:
    """One component's verdict plus the reasons that produced it."""

    component: str
    state: str
    reasons: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {"state": self.state, "reasons": list(self.reasons)}


@dataclass(frozen=True)
class HealthReport:
    """The whole stack's health at one instant."""

    state: str  #: worst component state ("healthy" when nothing is known)
    components: Dict[str, ComponentHealth] = field(default_factory=dict)
    alerts_active: int = 0
    alerts_total: int = 0
    slo: Dict[str, SloStatus] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The ``/healthz`` payload (see README for the schema)."""
        return {
            "status": self.state,
            "components": {
                name: health.as_dict()
                for name, health in sorted(self.components.items())
            },
            "alerts": {"active": self.alerts_active, "total": self.alerts_total},
            "slo": {
                scope: {
                    "breached": status.breached,
                    "error_budget_remaining": round(
                        status.error_budget_remaining, 6
                    ),
                    "fast_burn_rate": round(status.fast.burn_rate, 4),
                    "slow_burn_rate": round(status.slow.burn_rate, 4),
                }
                for scope, status in sorted(self.slo.items())
            },
        }


class HealthMonitor:
    """SLO engine + alert ledger + pull-side detectors, aggregated.

    Thread-safe; one monitor typically serves a whole process.  Farms and
    kernel timers are watched through weak references — a collected farm
    silently leaves the component map, it does not pin memory or report
    stale health.
    """

    def __init__(
        self,
        policy: Optional[SloPolicy] = None,
        *,
        alert_window_s: float = 120.0,
        queue_saturation: float = 0.8,
        holdoff_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self.alert_window_s = alert_window_s
        self.slo = SloEngine(policy, clock=clock)
        self.ledger = AlertLedger(clock=clock)
        self.latency = LatencySpikeDetector(self.ledger)
        self.flaps = BreakerFlapDetector(self.ledger, clock=clock)
        self._queue_saturation = queue_saturation
        self._holdoff_s = holdoff_s
        self._lock = threading.Lock()
        self._components: set = set()
        self._farms: List[weakref.ref] = []
        self._timers: List[Tuple[weakref.ref, float]] = []  # (ref, last drift check)
        self._last_fired: Dict[Tuple[str, str], float] = {}

    # -- registration ---------------------------------------------------- #
    def register_component(self, name: str) -> None:
        """Make ``name`` appear in health reports even before any signal."""
        with self._lock:
            self._components.add(name)

    def watch_farm(self, farm) -> None:
        """Watch a :class:`~repro.serve.farm.SolverFarm` (weakly)."""
        with self._lock:
            self._farms.append(weakref.ref(farm))
            self._components.add(farm.name)

    def watch_timer(self, timer) -> None:
        """Watch a :class:`~repro.perfmodel.timer.KernelTimer` for drift."""
        with self._lock:
            self._timers.append((weakref.ref(timer), -float("inf")))

    def tracker(self, scope: str) -> SloTracker:
        """The scope's SLO tracker (registers the scope as a component)."""
        self.register_component(scope)
        return self.slo.tracker(scope)

    # -- push side (dispatch loop) --------------------------------------- #
    def convergence_watch(self, component: str) -> ConvergenceWatch:
        """A fresh probe-stream detector for one dispatched solve."""
        return ConvergenceWatch(self.ledger, component)

    def observe_batch(self, component: str, report, solve_seconds: float) -> int:
        """Feed one :class:`~repro.serve.scheduler.BatchReport`; returns
        the number of alerts fired (the dispatch loop uses a non-zero
        count to tail-flag the batch's traces)."""
        fired = 0
        if report.exception is not None and self._should_fire("solve_error", component):
            self.ledger.emit(
                "solve_error",
                "critical",
                component,
                f"batched solve raised {type(report.exception).__name__}",
                error=repr(report.exception),
                width=report.width,
            )
            fired += 1
        if report.nonfinite and self._should_fire("solve_nonfinite", component):
            self.ledger.emit(
                "solve_nonfinite",
                "critical",
                component,
                "batched solve produced non-finite results",
                width=report.width,
            )
            fired += 1
        if report.exception is None and any(
            getattr(s, "name", "") == "BREAKDOWN" for s in report.statuses
        ):
            if self._should_fire("solver_breakdown", component):
                self.ledger.emit(
                    "solver_breakdown",
                    "critical",
                    component,
                    "a column of the batched solve broke down",
                    width=report.width,
                )
                fired += 1
        if self.latency.observe(component, solve_seconds) is not None:
            fired += 1
        return fired

    def _should_fire(self, detector: str, component: str) -> bool:
        now = self._clock()
        key = (detector, component)
        with self._lock:
            if now - self._last_fired.get(key, -float("inf")) < self._holdoff_s:
                return False
            self._last_fired[key] = now
            return True

    # -- pull side (scrape / health query) ------------------------------- #
    def evaluate(self) -> None:
        """Run the pull-side detectors against the watched objects."""
        with self._lock:
            farms = list(self._farms)
            timers = list(self._timers)
        for ref in farms:
            farm = ref()
            if farm is None or farm.closed:
                continue
            stats = farm.stats()
            for key, tenant in stats.tenants.items():
                component = f"{farm.name}/{key}"
                if (
                    tenant.queue_depth >= self._queue_saturation * farm.queue_depth
                    and self._should_fire("queue_saturation", component)
                ):
                    self.ledger.emit(
                        "queue_saturation",
                        "warning",
                        component,
                        f"queue {tenant.queue_depth}/{farm.queue_depth} "
                        f"(>= {self._queue_saturation:.0%} full)",
                        queue_depth=tenant.queue_depth,
                        queue_limit=farm.queue_depth,
                    )
                self.flaps.observe(component, tenant.breaker_trips)
        now = self._clock()
        refreshed: List[Tuple[weakref.ref, float]] = []
        for ref, last_check in timers:
            timer = ref()
            if timer is None:
                continue
            if now - last_check >= self._holdoff_s:
                cost_model_drift(timer, self.ledger)
                last_check = now
            refreshed.append((ref, last_check))
        with self._lock:
            self._timers = refreshed

    def _breaker_states(self) -> Dict[str, int]:
        states: Dict[str, int] = {}
        with self._lock:
            farms = list(self._farms)
        for ref in farms:
            farm = ref()
            if farm is None or farm.closed:
                continue
            for key, state in farm.breaker_states().items():
                states[f"{farm.name}/{key}"] = state
        return states

    def health(self, *, evaluate: bool = True) -> HealthReport:
        """Aggregate everything into one :class:`HealthReport`."""
        if evaluate:
            self.evaluate()
        now = self._clock()
        slo_statuses = self.slo.evaluate(now=now)
        active = self.ledger.active(self.alert_window_s, now=now)
        breakers = self._breaker_states()
        with self._lock:
            components = set(self._components)
        components.update(slo_statuses)
        components.update(alert.component for alert in active)
        components.update(breakers)
        verdicts: Dict[str, ComponentHealth] = {}
        worst = 0
        for component in sorted(components):
            reasons: List[str] = []
            level = 0
            breaker = breakers.get(component)
            if breaker == 1:
                level = max(level, 2)
                reasons.append("circuit breaker open")
            elif breaker == 2:
                level = max(level, 1)
                reasons.append("circuit breaker half-open (probing)")
            for alert in active:
                if alert.component != component:
                    continue
                if alert.severity == "critical":
                    level = max(level, 2)
                else:
                    level = max(level, 1)
                reasons.append(f"{alert.severity} alert: {alert.detector}")
            status = slo_statuses.get(component)
            if status is not None:
                if status.breached:
                    level = max(level, 2)
                    reasons.append("SLO breached (both burn windows over threshold)")
                elif status.fast.burn_rate > 1.0 or status.fast.latency_breached:
                    level = max(level, 1)
                    reasons.append(
                        f"burning error budget ({status.fast.burn_rate:.1f}x "
                        "in the fast window)"
                    )
            verdicts[component] = ComponentHealth(
                component=component,
                state=HEALTH_STATES[level],
                reasons=tuple(reasons),
            )
            worst = max(worst, level)
        return HealthReport(
            state=HEALTH_STATES[worst],
            components=verdicts,
            alerts_active=len(active),
            alerts_total=self.ledger.total,
            slo=slo_statuses,
        )

    def healthz(self) -> Dict[str, object]:
        """The ``/healthz`` JSON payload."""
        return self.health().as_dict()


def watch_health(monitor: HealthMonitor, *, registry=None) -> None:
    """Publish a :class:`HealthMonitor`'s aggregation as metrics.

    Registers a scrape-time collector (weak reference, like the other
    watchers) exporting the ``repro_slo_*`` burn/budget/latency surface,
    alert counters and the numeric component health state.
    """
    from .metrics import default_registry

    registry = registry if registry is not None else default_registry()
    ref = weakref.ref(monitor)

    def collect(reg):
        live = ref()
        if live is None:
            return False
        report = live.health()
        availability = reg.gauge(
            "repro_slo_availability_ratio",
            "Windowed availability per SLO scope (1.0 = no errors).",
            ("scope", "window"),
        )
        burn = reg.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn multiple per scope and window (1.0 = on budget).",
            ("scope", "window"),
        )
        latency = reg.gauge(
            "repro_slo_latency_quantile_ms",
            "Windowed latency quantiles per SLO scope.",
            ("scope", "window", "quantile"),
        )
        budget = reg.gauge(
            "repro_slo_error_budget_remaining_ratio",
            "Slow-window error budget left (0 = exhausted).",
            ("scope",),
        )
        breached = reg.gauge(
            "repro_slo_breached",
            "1 when both burn windows exceed their alerting thresholds.",
            ("scope",),
        )
        for scope, status in report.slo.items():
            for window, window_report in (("fast", status.fast), ("slow", status.slow)):
                availability.set(window_report.availability, scope=scope, window=window)
                burn.set(window_report.burn_rate, scope=scope, window=window)
                for quantile, value in (
                    ("p50", window_report.latency_p50_ms),
                    ("p95", window_report.latency_p95_ms),
                    ("p99", window_report.latency_p99_ms),
                ):
                    latency.set(value, scope=scope, window=window, quantile=quantile)
            budget.set(status.error_budget_remaining, scope=scope)
            breached.set(1.0 if status.breached else 0.0, scope=scope)
        alerts_total = reg.counter(
            "repro_alerts_total", "Alerts emitted, by detector.", ("detector",)
        )
        for detector, count in live.ledger.counts_by_detector().items():
            alerts_total.set(count, detector=detector)
        active = reg.gauge(
            "repro_alerts_active",
            "Alerts inside the health alert window, by severity.",
            ("severity",),
        )
        counts = {"warning": 0, "critical": 0}
        for alert in live.ledger.active(live.alert_window_s):
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        for severity, count in counts.items():
            active.set(count, severity=severity)
        state = reg.gauge(
            "repro_health_state",
            "Component health (0=healthy, 1=degraded, 2=unhealthy).",
            ("component",),
        )
        for name, health in report.components.items():
            state.set(HEALTH_STATES.index(health.state), component=name)

    registry.register_collector(collect)
