"""Offline trace analyzer: ``python -m repro.obs.report``.

Ingests the Chrome trace-event JSON written by
:func:`repro.obs.export_chrome_trace` (plus, optionally, a Prometheus
text snapshot from ``prometheus_text()``) and renders what an engineer
asks of a trace first:

* the request ledger — how many traces, with which terminal outcomes,
  how many were tail-sampled or detector-flagged;
* the critical-path breakdown — where wall time went, stage by stage
  (queue vs dispatch vs solve vs demux);
* per-tenant latency percentiles;
* the slowest and failed requests, with their span trees' timings;
* top anomalies folded in from the metrics snapshot.

``--check`` validates the span ledger instead of rendering: unique span
ids, resolvable parents, children nested inside their parents, a
terminal outcome on every request root, resolvable instant-event
references.  CI runs it against the committed ``TRACE_obs.json`` so a
malformed or unbalanced trace export fails the build.

Usage::

    python -m repro.obs.report trace.json
    python -m repro.obs.report trace.json --metrics metrics.txt --out report.txt
    python -m repro.obs.report trace.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["load_trace", "check_trace", "render_report", "main"]

#: Nesting slack in microseconds: exported timestamps are rounded to
#: 3 decimals, so a child may poke out of its parent by a rounding step.
NEST_EPSILON_US = 0.01

#: Request stages, in pipeline order (children of a ``request`` root).
REQUEST_STAGES = ("submit", "queued", "dispatch")

#: Batch stages, in pipeline order (children of a ``batch`` span).
BATCH_STAGES = ("batch_assembly", "solve", "retry", "demux")


@dataclass
class TraceSpan:
    """One complete (``ph == "X"``) event, flattened for analysis."""

    name: str
    span_id: int
    trace_id: int
    parent_id: Optional[int]
    start_us: float
    dur_us: float
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us


def load_trace(path: str) -> Tuple[List[TraceSpan], List[dict], List[str]]:
    """Parse a Chrome trace file into spans + instants + problems.

    Structural problems (missing ids, non-X/i/M phases, bad JSON types)
    are collected, not raised — ``--check`` wants all of them at once.
    """
    with open(path) as handle:
        payload = json.load(handle)
    events = payload.get("traceEvents")
    problems: List[str] = []
    spans: List[TraceSpan] = []
    instants: List[dict] = []
    if not isinstance(events, list) or not events:
        return spans, instants, ["traceEvents is missing or empty"]
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase == "i":
            instants.append(event)
            continue
        if phase != "X":
            problems.append(f"event {i}: unexpected phase {phase!r}")
            continue
        args = event.get("args", {})
        span_id = args.get("span_id")
        trace_id = args.get("trace_id")
        if not isinstance(span_id, int) or not isinstance(trace_id, int):
            problems.append(
                f"event {i} ({event.get('name')!r}): missing span_id/trace_id"
            )
            continue
        spans.append(
            TraceSpan(
                name=str(event.get("name", "")),
                span_id=span_id,
                trace_id=trace_id,
                parent_id=args.get("parent_id"),
                start_us=float(event.get("ts", 0.0)),
                dur_us=float(event.get("dur", 0.0)),
                args=dict(args),
            )
        )
    return spans, instants, problems


def check_trace(spans: List[TraceSpan], instants: List[dict]) -> List[str]:
    """Validate the span ledger; returns a list of problems (empty = OK)."""
    problems: List[str] = []
    by_id: Dict[int, TraceSpan] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span_id {span.span_id} ({span.name!r})")
        by_id[span.span_id] = span
    for span in spans:
        if span.dur_us < 0:
            problems.append(f"span {span.span_id} ({span.name!r}): negative duration")
        if span.parent_id is None:
            if span.trace_id != span.span_id:
                problems.append(
                    f"root span {span.span_id} ({span.name!r}): "
                    f"trace_id {span.trace_id} != span_id"
                )
            if span.name == "request" and "outcome" not in span.args:
                problems.append(
                    f"request root {span.span_id}: no terminal outcome"
                )
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name!r}): "
                f"unresolved parent_id {span.parent_id}"
            )
            continue
        if parent.trace_id != span.trace_id:
            problems.append(
                f"span {span.span_id} ({span.name!r}): trace_id "
                f"{span.trace_id} != parent's {parent.trace_id}"
            )
        if (
            span.start_us < parent.start_us - NEST_EPSILON_US
            or span.end_us > parent.end_us + NEST_EPSILON_US
        ):
            problems.append(
                f"span {span.span_id} ({span.name!r}): interval "
                f"[{span.start_us}, {span.end_us}] escapes parent "
                f"{parent.span_id} [{parent.start_us}, {parent.end_us}]"
            )
    for i, instant in enumerate(instants):
        ref = instant.get("args", {}).get("span_id")
        if ref is not None and ref not in by_id:
            problems.append(
                f"instant event {i} ({instant.get('name')!r}): "
                f"unresolved span_id {ref}"
            )
    return problems


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[index]


def _ms(us: float) -> str:
    return f"{us / 1e3:.3f} ms"


def _stage_table(rows: List[Tuple[str, List[float]]]) -> List[str]:
    lines = [
        f"  {'stage':<16} {'count':>6} {'mean':>12} {'p95':>12} {'max':>12}"
    ]
    for stage, durations in rows:
        if not durations:
            continue
        lines.append(
            f"  {stage:<16} {len(durations):>6} "
            f"{_ms(sum(durations) / len(durations)):>12} "
            f"{_ms(_percentile(durations, 0.95)):>12} "
            f"{_ms(max(durations)):>12}"
        )
    return lines


def _metrics_highlights(path: str) -> List[str]:
    """Pull the SLO/alert/drift lines out of a Prometheus text snapshot."""
    interesting = (
        "repro_alerts_total",
        "repro_alerts_active",
        "repro_slo_breached",
        "repro_slo_burn_rate",
        "repro_slo_error_budget_remaining_ratio",
        "repro_health_state",
        "repro_kernel_wall_model_ratio",
    )
    lines: List[str] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line.startswith(interesting):
                lines.append(f"  {line}")
    return lines or ["  (no SLO/alert series in the snapshot)"]


def render_report(
    spans: List[TraceSpan],
    instants: List[dict],
    *,
    metrics_path: Optional[str] = None,
) -> str:
    """Render the human-readable analysis."""
    roots = [s for s in spans if s.parent_id is None and s.name == "request"]
    children: Dict[int, List[TraceSpan]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    lines: List[str] = []
    lines.append("repro.obs.report — offline trace analysis")
    lines.append("=" * 60)
    lines.append(
        f"spans: {len(spans)}   instant events: {len(instants)}   "
        f"request traces: {len(roots)}"
    )

    # -- request ledger ------------------------------------------------- #
    outcomes: Dict[str, int] = {}
    sampled: Dict[str, int] = {}
    flagged = 0
    for root in roots:
        outcome = str(root.args.get("outcome", "?"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        mode = str(root.args.get("sampled", "full"))
        sampled[mode] = sampled.get(mode, 0) + 1
        if "keep_reason" in root.args:
            flagged += 1
    lines.append("")
    lines.append("Request outcomes")
    for outcome, count in sorted(outcomes.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {outcome:<16} {count:>6}")
    if sampled and sampled != {"full": len(roots)}:
        modes = ", ".join(f"{k}={v}" for k, v in sorted(sampled.items()))
        lines.append(f"  sampling: {modes}; detector-flagged: {flagged}")

    # -- critical path -------------------------------------------------- #
    lines.append("")
    lines.append("Critical path (request stages)")
    stage_rows = [
        (stage, [
            c.dur_us
            for root in roots
            for c in children.get(root.span_id, [])
            if c.name == stage
        ])
        for stage in REQUEST_STAGES
    ]
    lines.extend(_stage_table(stage_rows))
    batches = [s for s in spans if s.parent_id is None and s.name == "batch"]
    if batches:
        lines.append("")
        lines.append(f"Dispatch breakdown ({len(batches)} batches)")
        batch_rows = [
            (stage, [
                c.dur_us
                for batch in batches
                for c in children.get(batch.span_id, [])
                if c.name == stage
            ])
            for stage in BATCH_STAGES
        ]
        lines.extend(_stage_table(batch_rows))
        widths = [int(b.args.get("width", 1)) for b in batches]
        lines.append(
            f"  mean batch width: {sum(widths) / len(widths):.2f}   "
            f"max: {max(widths)}"
        )

    # -- per-tenant latency ---------------------------------------------- #
    by_tenant: Dict[str, List[float]] = {}
    for root in roots:
        tenant = str(root.args.get("tenant", root.args.get("session", "-")))
        by_tenant.setdefault(tenant, []).append(root.dur_us)
    if by_tenant:
        lines.append("")
        lines.append("Per-tenant request latency")
        lines.append(
            f"  {'tenant':<24} {'count':>6} {'p50':>12} {'p95':>12} {'max':>12}"
        )
        for tenant, durations in sorted(by_tenant.items()):
            lines.append(
                f"  {tenant:<24} {len(durations):>6} "
                f"{_ms(_percentile(durations, 0.50)):>12} "
                f"{_ms(_percentile(durations, 0.95)):>12} "
                f"{_ms(max(durations)):>12}"
            )

    # -- worst offenders -------------------------------------------------- #
    lines.append("")
    lines.append("Slowest requests")
    for root in sorted(roots, key=lambda s: -s.dur_us)[:5]:
        outcome = root.args.get("outcome", "?")
        tenant = root.args.get("tenant", root.args.get("session", "-"))
        lines.append(
            f"  trace {root.trace_id:<8} {_ms(root.dur_us):>12}  "
            f"outcome={outcome} tenant={tenant}"
        )
    errors = [
        root
        for root in roots
        if str(root.args.get("outcome")) not in ("converged", "cancelled")
    ]
    if errors:
        lines.append("")
        lines.append(f"Non-converged requests ({len(errors)})")
        for root in sorted(errors, key=lambda s: -s.dur_us)[:5]:
            detail = root.args.get("error", root.args.get("keep_reason", ""))
            lines.append(
                f"  trace {root.trace_id:<8} {_ms(root.dur_us):>12}  "
                f"outcome={root.args.get('outcome')} {detail}"
            )

    # -- metrics fold-in --------------------------------------------------- #
    if metrics_path is not None:
        lines.append("")
        lines.append("Metrics snapshot highlights")
        lines.extend(_metrics_highlights(metrics_path))

    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Offline analyzer for repro.obs Chrome trace exports.",
    )
    parser.add_argument("trace", help="Chrome trace JSON (export_chrome_trace output)")
    parser.add_argument(
        "--metrics", help="Prometheus text snapshot to fold into the report"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the span ledger instead of rendering (exit 1 on problems)",
    )
    parser.add_argument("--out", help="also write the rendered report to this file")
    args = parser.parse_args(argv)

    spans, instants, problems = load_trace(args.trace)
    problems.extend(check_trace(spans, instants))
    if args.check:
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            print(f"{args.trace}: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        print(
            f"{args.trace}: OK ({len(spans)} spans, "
            f"{len(instants)} instant events, span ledger balanced)"
        )
        return 0
    if problems:
        for problem in problems:
            print(f"WARNING: {problem}", file=sys.stderr)
    report = render_report(spans, instants, metrics_path=args.metrics)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
