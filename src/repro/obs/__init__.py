"""repro.obs — observability for the whole stack.

Three cooperating pieces, all off the hot path by default:

* **Tracing** (:mod:`repro.obs.trace`): span-based request traces
  through the serve layer (``submit → queued → dispatch → solve →
  demux``) plus solver convergence probes, exportable as Chrome
  trace-event JSON (:func:`export_chrome_trace`) for
  ``chrome://tracing`` / Perfetto.  Off by default; enable per session
  (``obs=``), process-wide (:func:`enable_tracing`) or via config
  (``ReproConfig(obs=ObsConfig(tracing=True))``).
* **Metrics** (:mod:`repro.obs.metrics`): a counter/gauge/histogram
  registry with Prometheus text exposition
  (:func:`prometheus_text`) and an optional stdlib HTTP exporter
  (:func:`start_metrics_server`).  Sessions, farms and kernel timers
  publish through pull-based collectors sampled at scrape time — the
  serve hot paths pay nothing.
* **Structured logging** (:mod:`repro.obs.log`): ``event key=value``
  records under the ``"repro"`` logger namespace for breaker trips,
  evictions and width-1 retries.

On top of the raw streams sits the health intelligence layer:

* **SLO engine** (:mod:`repro.obs.slo`): declarative availability +
  latency objectives evaluated per tenant and fleet-wide over sliding
  windows with multi-window burn-rate alerting.
* **Anomaly detectors** (:mod:`repro.obs.anomaly`): convergence
  stagnation / residual spikes from the probe stream, latency spikes,
  breaker flapping, queue saturation and cost-model drift — all feeding
  a bounded :class:`AlertLedger`.
* **Health surface** (:mod:`repro.obs.health`): a :class:`HealthMonitor`
  folding SLOs, alerts and breaker states into per-component
  ``healthy/degraded/unhealthy``, served as ``/healthz`` + ``/slo`` by
  the HTTP exporter.
* **Adaptive sampling** (:class:`Sampler` on :class:`Tracer`): head
  stride sampling with tail retention of failed / slow /
  detector-flagged requests, for always-on production tracing.
* **Offline analysis** (``python -m repro.obs.report``): critical-path
  and anomaly breakdowns from an exported Chrome trace JSON.

Quickstart::

    import repro
    from repro.obs import Observability, Tracer, export_chrome_trace

    obs = Observability(tracer=Tracer())      # tracing on, metrics on
    session = repro.session(matrix, obs=obs)
    session.submit(b).result()
    export_chrome_trace("trace.json", tracer=obs.tracer)
    print(repro.obs.prometheus_text())
"""

from __future__ import annotations

from typing import Optional

from ..config import ObsConfig, get_config
from .anomaly import (
    ALERT_SEVERITIES,
    Alert,
    AlertLedger,
    BreakerFlapDetector,
    ConvergenceWatch,
    LatencySpikeDetector,
    cost_model_drift,
)
from .health import (
    HEALTH_STATES,
    ComponentHealth,
    HealthMonitor,
    HealthReport,
    watch_health,
)
from .log import LOGGER_NAME, get_logger, log_event
from .slo import SloEngine, SloPolicy, SloStatus, SloTracker, WindowReport
from .metrics import (
    METRIC_NAME_RE,
    METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsHTTPServer,
    MetricsRegistry,
    default_registry,
    prometheus_text,
    start_metrics_server,
    watch_farm,
    watch_session,
    watch_timer,
)
from .probe import PROBE_KINDS, ProbeEvent, span_probe
from .trace import (
    RequestTrace,
    Sampler,
    Span,
    Tracer,
    default_tracer,
    disable_tracing,
    enable_tracing,
    export_chrome_trace,
)

__all__ = [
    # bundle + config
    "Observability",
    "resolve_observability",
    "ObsConfig",
    # tracing
    "Tracer",
    "Span",
    "Sampler",
    "RequestTrace",
    "enable_tracing",
    "disable_tracing",
    "default_tracer",
    "export_chrome_trace",
    # SLOs
    "SloPolicy",
    "SloEngine",
    "SloTracker",
    "SloStatus",
    "WindowReport",
    # anomaly detection
    "Alert",
    "AlertLedger",
    "ALERT_SEVERITIES",
    "ConvergenceWatch",
    "LatencySpikeDetector",
    "BreakerFlapDetector",
    "cost_model_drift",
    # health surface
    "HealthMonitor",
    "HealthReport",
    "ComponentHealth",
    "HEALTH_STATES",
    "watch_health",
    # solver probes
    "ProbeEvent",
    "PROBE_KINDS",
    "span_probe",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "prometheus_text",
    "start_metrics_server",
    "MetricsHTTPServer",
    "watch_session",
    "watch_farm",
    "watch_timer",
    "METRIC_NAMES",
    "METRIC_NAME_RE",
    # logging
    "LOGGER_NAME",
    "get_logger",
    "log_event",
]

_UNSET = object()


class Observability:
    """The tracer + metrics-registry (+ health monitor) bundle a session
    or farm runs with.

    Omitted pieces resolve from ``get_config().obs`` at construction
    time: ``tracer`` from the process-default tracer (``None`` unless
    tracing is on), ``registry`` from the process registry (unless
    ``ObsConfig.metrics`` is off).  Pass ``tracer=None`` /
    ``registry=None`` explicitly to force a piece off regardless of
    config — :meth:`disabled` does both, which is what the overhead
    benchmark uses as its baseline.

    ``health`` is explicit-only (default ``None``): pass a
    :class:`HealthMonitor` to feed its SLO trackers from the serve
    telemetry, run its anomaly detectors in the dispatch loop, and have
    farms register themselves for breaker/queue health.
    """

    __slots__ = ("tracer", "registry", "health")

    def __init__(self, *, tracer=_UNSET, registry=_UNSET, health=None) -> None:
        if tracer is _UNSET:
            tracer = default_tracer()
        if registry is _UNSET:
            registry = default_registry() if get_config().obs.metrics else None
        self.tracer: Optional[Tracer] = tracer
        self.registry: Optional[MetricsRegistry] = registry
        self.health: Optional[HealthMonitor] = health

    @classmethod
    def disabled(cls) -> "Observability":
        """Everything off — no tracer, no metrics, regardless of config."""
        return cls(tracer=None, registry=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observability(tracing={'on' if self.tracer else 'off'}, "
            f"metrics={'on' if self.registry else 'off'}, "
            f"health={'on' if self.health else 'off'})"
        )


def resolve_observability(obs) -> Observability:
    """Normalise the ``obs=`` kwarg of sessions and farms.

    ``None`` → config-driven defaults; an :class:`Observability` passes
    through; a bare :class:`Tracer` is shorthand for "trace with this".
    """
    if obs is None:
        return Observability()
    if isinstance(obs, Observability):
        return obs
    if isinstance(obs, Tracer):
        return Observability(tracer=obs)
    raise TypeError(
        f"obs= expects an Observability, a Tracer or None, got {type(obs).__name__}"
    )
