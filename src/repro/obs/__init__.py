"""repro.obs — observability for the whole stack.

Three cooperating pieces, all off the hot path by default:

* **Tracing** (:mod:`repro.obs.trace`): span-based request traces
  through the serve layer (``submit → queued → dispatch → solve →
  demux``) plus solver convergence probes, exportable as Chrome
  trace-event JSON (:func:`export_chrome_trace`) for
  ``chrome://tracing`` / Perfetto.  Off by default; enable per session
  (``obs=``), process-wide (:func:`enable_tracing`) or via config
  (``ReproConfig(obs=ObsConfig(tracing=True))``).
* **Metrics** (:mod:`repro.obs.metrics`): a counter/gauge/histogram
  registry with Prometheus text exposition
  (:func:`prometheus_text`) and an optional stdlib HTTP exporter
  (:func:`start_metrics_server`).  Sessions, farms and kernel timers
  publish through pull-based collectors sampled at scrape time — the
  serve hot paths pay nothing.
* **Structured logging** (:mod:`repro.obs.log`): ``event key=value``
  records under the ``"repro"`` logger namespace for breaker trips,
  evictions and width-1 retries.

Quickstart::

    import repro
    from repro.obs import Observability, Tracer, export_chrome_trace

    obs = Observability(tracer=Tracer())      # tracing on, metrics on
    session = repro.session(matrix, obs=obs)
    session.submit(b).result()
    export_chrome_trace("trace.json", tracer=obs.tracer)
    print(repro.obs.prometheus_text())
"""

from __future__ import annotations

from typing import Optional

from ..config import ObsConfig, get_config
from .log import LOGGER_NAME, get_logger, log_event
from .metrics import (
    METRIC_NAME_RE,
    METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsHTTPServer,
    MetricsRegistry,
    default_registry,
    prometheus_text,
    start_metrics_server,
    watch_farm,
    watch_session,
    watch_timer,
)
from .probe import PROBE_KINDS, ProbeEvent, span_probe
from .trace import (
    RequestTrace,
    Span,
    Tracer,
    default_tracer,
    disable_tracing,
    enable_tracing,
    export_chrome_trace,
)

__all__ = [
    # bundle + config
    "Observability",
    "resolve_observability",
    "ObsConfig",
    # tracing
    "Tracer",
    "Span",
    "RequestTrace",
    "enable_tracing",
    "disable_tracing",
    "default_tracer",
    "export_chrome_trace",
    # solver probes
    "ProbeEvent",
    "PROBE_KINDS",
    "span_probe",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "prometheus_text",
    "start_metrics_server",
    "MetricsHTTPServer",
    "watch_session",
    "watch_farm",
    "watch_timer",
    "METRIC_NAMES",
    "METRIC_NAME_RE",
    # logging
    "LOGGER_NAME",
    "get_logger",
    "log_event",
]

_UNSET = object()


class Observability:
    """The tracer + metrics-registry pair a session or farm runs with.

    Omitted pieces resolve from ``get_config().obs`` at construction
    time: ``tracer`` from the process-default tracer (``None`` unless
    tracing is on), ``registry`` from the process registry (unless
    ``ObsConfig.metrics`` is off).  Pass ``tracer=None`` /
    ``registry=None`` explicitly to force a piece off regardless of
    config — :meth:`disabled` does both, which is what the overhead
    benchmark uses as its baseline.
    """

    __slots__ = ("tracer", "registry")

    def __init__(self, *, tracer=_UNSET, registry=_UNSET) -> None:
        if tracer is _UNSET:
            tracer = default_tracer()
        if registry is _UNSET:
            registry = default_registry() if get_config().obs.metrics else None
        self.tracer: Optional[Tracer] = tracer
        self.registry: Optional[MetricsRegistry] = registry

    @classmethod
    def disabled(cls) -> "Observability":
        """Everything off — no tracer, no metrics, regardless of config."""
        return cls(tracer=None, registry=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observability(tracing={'on' if self.tracer else 'off'}, "
            f"metrics={'on' if self.registry else 'off'})"
        )


def resolve_observability(obs) -> Observability:
    """Normalise the ``obs=`` kwarg of sessions and farms.

    ``None`` → config-driven defaults; an :class:`Observability` passes
    through; a bare :class:`Tracer` is shorthand for "trace with this".
    """
    if obs is None:
        return Observability()
    if isinstance(obs, Observability):
        return obs
    if isinstance(obs, Tracer):
        return Observability(tracer=obs)
    raise TypeError(
        f"obs= expects an Observability, a Tracer or None, got {type(obs).__name__}"
    )
