"""Sliding-window SLO evaluation with multi-window burn-rate alerting.

A :class:`SloPolicy` declares the objectives — availability over the
served/failed ledger, optional latency quantile bounds — and the two
evaluation windows.  A :class:`SloTracker` is a telemetry *sink*: it
implements the recording half of
:class:`repro.serve.telemetry.ServeTelemetry`, so the serve layer feeds
it through the existing :class:`~repro.serve.telemetry.TelemetryFanout`
plumbing with zero new hook points.  The :class:`SloEngine` owns one
tracker per scope (``"farm"``, ``"farm/tenant"``, a session name, …) and
evaluates the policy over both windows on demand.

Multi-window burn-rate alerting follows the SRE-workbook shape: the
*fast* window (default 5 min) catches sharp regressions quickly, the
*slow* window (default 1 h) filters blips — the availability page fires
only when **both** windows burn error budget faster than their
thresholds.  Burn rate is ``error_rate / error_budget``: ``1.0`` means
the scope is consuming budget exactly as fast as the policy allows,
``14.4`` (the default fast threshold) means a 30-day budget would be
gone in ~2 days.

All timestamps are monotonic (``time.monotonic``), never wall-clock, so
windows are immune to clock steps; tests inject a fake clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from ..config import get_config

__all__ = [
    "SloPolicy",
    "SloTracker",
    "SloEngine",
    "WindowReport",
    "SloStatus",
]

#: Bound on per-tracker event retention (oldest events fall off first;
#: the slow window is also pruned by time, this is the memory backstop).
DEFAULT_EVENT_CAPACITY = 16384


def _quantile(ordered: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list (0.0 for empty)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[index]


@dataclass(frozen=True)
class SloPolicy:
    """Declarative service-level objectives plus alerting windows.

    availability_target:
        Fraction of *counted* requests (everything except client
        cancellations) that must succeed.  The error budget is
        ``1 - availability_target``.
    latency_p95_ms / latency_p99_ms:
        Optional latency objectives: the windowed quantile must stay at
        or below the bound.  ``0`` disables that quantile's objective.
    fast_window_s / slow_window_s:
        The two sliding evaluation windows (seconds, monotonic clock).
    fast_burn_threshold / slow_burn_threshold:
        Burn-rate multiples that trip the availability alert; the alert
        requires **both** windows over their threshold (multi-window
        alerting — fast reacts, slow confirms).
    """

    availability_target: float = 0.999
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError(
                f"availability_target must be in (0, 1), got {self.availability_target}"
            )
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("SLO windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise ValueError("fast_window_s must not exceed slow_window_s")

    @property
    def error_budget(self) -> float:
        """Allowed error fraction (``1 - availability_target``)."""
        return 1.0 - self.availability_target

    @classmethod
    def from_config(cls) -> "SloPolicy":
        """Policy implied by the active :class:`repro.config.ObsConfig`."""
        obs = get_config().obs
        return cls(
            availability_target=obs.slo_availability_target,
            latency_p95_ms=obs.slo_latency_p95_ms,
            fast_window_s=obs.slo_fast_window_s,
            slow_window_s=obs.slo_slow_window_s,
        )


@dataclass(frozen=True)
class WindowReport:
    """The policy evaluated over one sliding window of one scope."""

    window_s: float
    total: int  #: counted requests (good + bad; cancellations excluded)
    bad: int
    availability: float  #: good / total (1.0 when the window is empty)
    error_rate: float  #: bad / total
    burn_rate: float  #: error_rate / policy error budget
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_breached: bool  #: a configured latency objective is exceeded

    def as_dict(self) -> Dict[str, object]:
        return {
            "window_s": self.window_s,
            "total": self.total,
            "bad": self.bad,
            "availability": round(self.availability, 6),
            "error_rate": round(self.error_rate, 6),
            "burn_rate": round(self.burn_rate, 4),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "latency_breached": self.latency_breached,
        }


@dataclass(frozen=True)
class SloStatus:
    """One scope's full SLO evaluation (both windows + alert verdicts)."""

    scope: str
    fast: WindowReport
    slow: WindowReport
    burn_alert: bool  #: both windows over their burn-rate threshold
    latency_alert: bool  #: a latency objective exceeded in both windows
    breached: bool  #: burn_alert or latency_alert
    error_budget_remaining: float  #: 1 - slow-window burn (clamped to [0, 1])

    def as_dict(self) -> Dict[str, object]:
        return {
            "scope": self.scope,
            "fast": self.fast.as_dict(),
            "slow": self.slow.as_dict(),
            "burn_alert": self.burn_alert,
            "latency_alert": self.latency_alert,
            "breached": self.breached,
            "error_budget_remaining": round(self.error_budget_remaining, 6),
        }


class SloTracker:
    """Per-scope sliding ledger of (timestamp, latency, goodness) events.

    Duck-types the recording half of
    :class:`repro.serve.telemetry.ServeTelemetry`, so a
    :class:`~repro.serve.telemetry.TelemetryFanout` can feed it alongside
    the real counters.  Client cancellations are recorded as *neutral*
    (latency kept for the quantiles, excluded from availability): the
    client changed its mind, the service did nothing wrong.
    """

    __slots__ = ("_lock", "_clock", "_events")

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_EVENT_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        #: (t_monotonic, latency_s or None, good: Optional[bool])
        self._events: Deque[Tuple[float, Optional[float], Optional[bool]]] = deque(
            maxlen=max(64, int(capacity))
        )

    # -- recording interface (ServeTelemetry duck type) ----------------- #
    def record_submitted(self) -> None:
        """Admission is not an outcome; nothing to ledger yet."""

    def record_rejected(self) -> None:
        self._record(None, good=False)

    def record_timeout(self) -> None:
        self._record(None, good=False)

    def record_cancelled(self) -> None:
        self._record(None, good=None)

    def record_abandoned(self) -> None:
        self._record(None, good=False)

    def record_batch(
        self,
        queue_waits: List[float],
        solve_seconds: "float | List[float]",
        *,
        block_iterations: int = 0,
        failed: int = 0,
        retried: int = 0,
        timed_out: int = 0,
        cancelled: int = 0,
    ) -> None:
        del block_iterations, retried  # throughput detail, not an SLO input
        occupancy = len(queue_waits)
        if isinstance(solve_seconds, (int, float)):
            solve_seconds = [float(solve_seconds)] * occupancy
        bad = failed + timed_out
        now = self._clock()
        with self._lock:
            for i, (wait, solve) in enumerate(zip(queue_waits, solve_seconds)):
                if i < bad:
                    good: Optional[bool] = False
                elif i >= occupancy - cancelled:
                    good = None
                else:
                    good = True
                self._events.append((now, wait + solve, good))

    def _record(self, latency_s: Optional[float], *, good: Optional[bool]) -> None:
        with self._lock:
            self._events.append((self._clock(), latency_s, good))

    # -- evaluation ------------------------------------------------------ #
    def events_since(
        self, cutoff: float
    ) -> List[Tuple[float, Optional[float], Optional[bool]]]:
        with self._lock:
            return [event for event in self._events if event[0] >= cutoff]

    def window(self, policy: SloPolicy, window_s: float, now: float) -> WindowReport:
        """Evaluate ``policy`` over the trailing ``window_s`` seconds."""
        events = self.events_since(now - window_s)
        total = bad = 0
        latencies: List[float] = []
        for _, latency, good in events:
            if latency is not None:
                latencies.append(latency * 1e3)
            if good is None:
                continue
            total += 1
            if not good:
                bad += 1
        availability = 1.0 if total == 0 else (total - bad) / total
        error_rate = 0.0 if total == 0 else bad / total
        burn_rate = error_rate / policy.error_budget
        latencies.sort()
        p50 = _quantile(latencies, 0.50)
        p95 = _quantile(latencies, 0.95)
        p99 = _quantile(latencies, 0.99)
        latency_breached = bool(
            (policy.latency_p95_ms > 0 and p95 > policy.latency_p95_ms)
            or (policy.latency_p99_ms > 0 and p99 > policy.latency_p99_ms)
        )
        return WindowReport(
            window_s=window_s,
            total=total,
            bad=bad,
            availability=availability,
            error_rate=error_rate,
            burn_rate=burn_rate,
            latency_p50_ms=p50,
            latency_p95_ms=p95,
            latency_p99_ms=p99,
            latency_breached=latency_breached,
        )


class SloEngine:
    """Per-scope :class:`SloTracker` registry + policy evaluation.

    Scopes are free-form strings; the serve wiring uses the farm name for
    the fleet, ``"<farm>/<tenant>"`` per tenant, and the session name for
    a standalone session.  ``tracker(scope)`` is get-or-create so sinks
    can be built before any traffic exists.
    """

    def __init__(
        self,
        policy: Optional[SloPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else SloPolicy.from_config()
        self._clock = clock
        self._lock = threading.Lock()
        self._trackers: Dict[str, SloTracker] = {}

    def tracker(self, scope: str) -> SloTracker:
        with self._lock:
            tracker = self._trackers.get(scope)
            if tracker is None:
                tracker = SloTracker(clock=self._clock)
                self._trackers[scope] = tracker
            return tracker

    def scopes(self) -> List[str]:
        with self._lock:
            return sorted(self._trackers)

    def status(self, scope: str, *, now: Optional[float] = None) -> SloStatus:
        """Evaluate one scope against the policy (both windows)."""
        now = self._clock() if now is None else now
        policy = self.policy
        tracker = self.tracker(scope)
        fast = tracker.window(policy, policy.fast_window_s, now)
        slow = tracker.window(policy, policy.slow_window_s, now)
        burn_alert = (
            fast.burn_rate >= policy.fast_burn_threshold
            and slow.burn_rate >= policy.slow_burn_threshold
        )
        latency_alert = fast.latency_breached and slow.latency_breached
        return SloStatus(
            scope=scope,
            fast=fast,
            slow=slow,
            burn_alert=burn_alert,
            latency_alert=latency_alert,
            breached=burn_alert or latency_alert,
            error_budget_remaining=max(0.0, min(1.0, 1.0 - slow.burn_rate)),
        )

    def evaluate(self, *, now: Optional[float] = None) -> Dict[str, SloStatus]:
        """Evaluate every known scope; keyed by scope name."""
        now = self._clock() if now is None else now
        return {scope: self.status(scope, now=now) for scope in self.scopes()}
