"""Anomaly detectors over the PR-9 telemetry streams.

Each detector watches one raw stream the stack already produces and
turns pathological patterns into typed :class:`Alert` records:

* :class:`ConvergenceWatch` — per-dispatch consumer of the solver
  :class:`~repro.obs.probe.ProbeEvent` stream: non-finite residuals,
  residual spikes, convergence stagnation.
* :class:`LatencySpikeDetector` — per-component EMA over batch solve
  wall times; flags solves far above the component's recent normal.
* :class:`BreakerFlapDetector` — circuit-breaker trip counts per
  operator; one trip is a warning, repeated trips inside the window
  (flapping: trip → half-open probe succeeds → trip again) is critical.
* :func:`cost_model_drift` — wall vs modelled seconds per kernel label
  from a :class:`~repro.perfmodel.timer.KernelTimer`; a persistent ratio
  far from 1 means the cost model no longer predicts the machine.

Alerts flow into a shared bounded :class:`AlertLedger` which also mirrors
every alert as a structured ``obs/log.py`` line (``alert detector=...``),
so greppable logs and the in-memory ledger never disagree.  The
:class:`~repro.obs.health.HealthMonitor` owns the ledger and folds the
alert stream into component health.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .log import get_logger, log_event
from .probe import ProbeEvent

__all__ = [
    "Alert",
    "AlertLedger",
    "ConvergenceWatch",
    "LatencySpikeDetector",
    "BreakerFlapDetector",
    "cost_model_drift",
    "ALERT_SEVERITIES",
]

#: Severity levels, in escalation order.
ALERT_SEVERITIES = ("warning", "critical")

_LOGGER = get_logger("obs.anomaly")


@dataclass(frozen=True)
class Alert:
    """One structured anomaly observation.

    ``detector`` is the stable machine-readable kind (``residual_spike``,
    ``queue_saturation``, …); ``component`` names the scope it fired for
    (a farm, ``"<farm>/<tenant>"``, a session, a kernel label).
    ``t_monotonic`` is a ``time.monotonic`` timestamp — alerts order and
    window correctly across clock steps but carry no wall-clock time.
    """

    detector: str
    severity: str
    component: str
    message: str
    t_monotonic: float
    context: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "component": self.component,
            "message": self.message,
            "age_s": None,  # filled in by the health surface at render time
            "context": dict(self.context),
        }


class AlertLedger:
    """Bounded, thread-safe alert ring with per-detector counters.

    ``emit()`` is the single entry point: it stamps the alert, appends it
    (oldest falls off beyond ``capacity``), bumps the counters and mirrors
    the alert to the ``repro.obs.anomaly`` logger as a structured
    ``alert`` event (warning → ``WARNING``, critical → ``ERROR``).
    """

    def __init__(
        self,
        *,
        capacity: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._alerts: Deque[Alert] = deque(maxlen=max(16, int(capacity)))
        self._by_detector: Dict[str, int] = {}
        self._by_severity: Dict[str, int] = {}
        self._total = 0

    def emit(
        self,
        detector: str,
        severity: str,
        component: str,
        message: str,
        **context: object,
    ) -> Alert:
        if severity not in ALERT_SEVERITIES:
            raise ValueError(f"severity must be one of {ALERT_SEVERITIES}, got {severity!r}")
        alert = Alert(
            detector=detector,
            severity=severity,
            component=component,
            message=message,
            t_monotonic=self._clock(),
            context=dict(context),
        )
        with self._lock:
            self._alerts.append(alert)
            self._by_detector[detector] = self._by_detector.get(detector, 0) + 1
            self._by_severity[severity] = self._by_severity.get(severity, 0) + 1
            self._total += 1
        log_event(
            _LOGGER,
            "alert",
            level=logging.ERROR if severity == "critical" else logging.WARNING,
            detector=detector,
            severity=severity,
            component=component,
            message=message,
            **context,
        )
        return alert

    # -- reading --------------------------------------------------------- #
    @property
    def total(self) -> int:
        with self._lock:
            return self._total

    def counts_by_detector(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._by_detector)

    def counts_by_severity(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._by_severity)

    def alerts(self) -> List[Alert]:
        """Snapshot of the retained alerts (oldest first)."""
        with self._lock:
            return list(self._alerts)

    def active(self, window_s: float, *, now: Optional[float] = None) -> List[Alert]:
        """Alerts younger than ``window_s`` seconds (oldest first)."""
        now = self._clock() if now is None else now
        cutoff = now - window_s
        with self._lock:
            return [a for a in self._alerts if a.t_monotonic >= cutoff]


class ConvergenceWatch:
    """Probe-stream detector for one dispatched solve.

    Built per dispatch (``HealthMonitor.convergence_watch``) and chained
    in front of the span probe, it inspects every
    :class:`~repro.obs.probe.ProbeEvent` of that solve:

    * ``nonfinite_residual`` (critical) — the explicit residual went NaN
      or Inf at a restart/refinement boundary.
    * ``residual_spike`` (warning) — the residual jumped more than
      ``spike_factor``× above the best residual seen so far (divergence,
      not the plateauing of a hard problem).
    * ``convergence_stagnation`` (warning) — ``stall_boundaries``
      consecutive boundaries improved the residual by less than
      ``stall_improvement`` relative — the solver is burning restarts
      without converging.

    Each kind fires at most once per watch (one alert per episode, not
    one per restart), so a 400-restart stagnating solve costs one alert.
    """

    __slots__ = (
        "_ledger",
        "_component",
        "_best",
        "_last",
        "_flat",
        "_fired",
        "alerts",
        "_spike_factor",
        "_stall_boundaries",
        "_stall_improvement",
    )

    def __init__(
        self,
        ledger: AlertLedger,
        component: str,
        *,
        spike_factor: float = 100.0,
        stall_boundaries: int = 6,
        stall_improvement: float = 0.10,
    ) -> None:
        self._ledger = ledger
        self._component = component
        self._best = math.inf
        self._last = math.inf
        self._flat = 0
        self._fired: Dict[str, bool] = {}
        #: Alerts fired by this watch (the dispatch loop flags traces with it).
        self.alerts = 0
        self._spike_factor = spike_factor
        self._stall_boundaries = stall_boundaries
        self._stall_improvement = stall_improvement

    def _fire(self, detector: str, severity: str, message: str, **context) -> None:
        if self._fired.get(detector):
            return
        self._fired[detector] = True
        self.alerts += 1
        self._ledger.emit(detector, severity, self._component, message, **context)

    def __call__(self, event: ProbeEvent) -> None:
        residual = event.residual
        if event.kind == "terminal":
            status = getattr(event.status, "name", None)
            if status == "BREAKDOWN":
                self._fire(
                    "solver_breakdown",
                    "critical",
                    f"{event.solver} reported breakdown",
                    solver=event.solver,
                    iteration=event.iteration,
                )
            return
        if not math.isfinite(residual):
            self._fire(
                "nonfinite_residual",
                "critical",
                f"{event.solver} residual became non-finite",
                solver=event.solver,
                iteration=event.iteration,
                restarts=event.restarts,
            )
            return
        if self._best < math.inf and residual > self._best * self._spike_factor:
            self._fire(
                "residual_spike",
                "warning",
                f"{event.solver} residual spiked {residual / self._best:.1f}x above best",
                solver=event.solver,
                residual=residual,
                best=self._best,
                restarts=event.restarts,
            )
        if self._last < math.inf:
            improvement = 1.0 - residual / self._last if self._last > 0 else 0.0
            if improvement < self._stall_improvement:
                self._flat += 1
                if self._flat >= self._stall_boundaries:
                    self._fire(
                        "convergence_stagnation",
                        "warning",
                        f"{event.solver} stagnated for {self._flat} boundaries",
                        solver=event.solver,
                        residual=residual,
                        restarts=event.restarts,
                    )
            else:
                self._flat = 0
        self._last = residual
        self._best = min(self._best, residual)


class LatencySpikeDetector:
    """Per-component EMA over batch solve wall times.

    A solve is a spike when it exceeds ``max(factor × ema, min_ms)``
    after the component has seen at least ``warmup`` samples — the floor
    keeps micro-solves (EMA of a few hundred microseconds) from alerting
    on scheduler jitter.
    """

    def __init__(
        self,
        ledger: AlertLedger,
        *,
        factor: float = 5.0,
        min_ms: float = 50.0,
        warmup: int = 8,
        alpha: float = 0.2,
    ) -> None:
        self._ledger = ledger
        self._lock = threading.Lock()
        self._factor = factor
        self._min_s = min_ms / 1e3
        self._warmup = max(1, int(warmup))
        self._alpha = alpha
        self._state: Dict[str, Tuple[float, int]] = {}  # component -> (ema, n)

    def observe(self, component: str, solve_seconds: float) -> Optional[Alert]:
        """Feed one batch solve wall time; returns the alert if one fired."""
        with self._lock:
            ema, n = self._state.get(component, (0.0, 0))
            spike = (
                n >= self._warmup
                and solve_seconds > max(self._factor * ema, self._min_s)
            )
            if not spike:
                # Spikes are excluded from the EMA so one outlier does not
                # raise the bar for detecting the next one.
                ema = (
                    solve_seconds
                    if n == 0
                    else (1.0 - self._alpha) * ema + self._alpha * solve_seconds
                )
                n += 1
            self._state[component] = (ema, n)
        if not spike:
            return None
        return self._ledger.emit(
            "latency_spike",
            "warning",
            component,
            f"solve took {solve_seconds * 1e3:.1f} ms vs {ema * 1e3:.1f} ms EMA",
            solve_ms=solve_seconds * 1e3,
            ema_ms=ema * 1e3,
        )


class BreakerFlapDetector:
    """Circuit-breaker trip pattern detector.

    Fed with cumulative per-operator trip counts (from
    ``FarmTelemetry``/``FarmStats``), it alerts on every *new* trip
    (warning) and escalates to ``breaker_flapping`` (critical) when an
    operator trips ``flap_threshold`` times within ``flap_window_s`` —
    the open → half-open probe → open again loop that means the operator
    is sick, not unlucky.
    """

    def __init__(
        self,
        ledger: AlertLedger,
        *,
        flap_threshold: int = 3,
        flap_window_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._ledger = ledger
        self._lock = threading.Lock()
        self._clock = clock
        self._flap_threshold = max(2, int(flap_threshold))
        self._flap_window_s = flap_window_s
        self._seen: Dict[str, int] = {}  # component -> trip count already handled
        self._trips: Dict[str, Deque[float]] = {}
        self._flapping_fired: Dict[str, float] = {}

    def observe(self, component: str, trip_count: int) -> List[Alert]:
        """Reconcile one component's cumulative trip count; returns new alerts."""
        now = self._clock()
        fired: List[Alert] = []
        with self._lock:
            seen = self._seen.get(component, 0)
            new_trips = max(0, trip_count - seen)
            self._seen[component] = max(seen, trip_count)
            if not new_trips:
                return fired
            window = self._trips.setdefault(component, deque(maxlen=64))
            for _ in range(new_trips):
                window.append(now)
            cutoff = now - self._flap_window_s
            recent = sum(1 for t in window if t >= cutoff)
            flapping = (
                recent >= self._flap_threshold
                and now - self._flapping_fired.get(component, -math.inf)
                >= self._flap_window_s
            )
            if flapping:
                self._flapping_fired[component] = now
        fired.append(
            self._ledger.emit(
                "breaker_trip",
                "warning",
                component,
                f"circuit breaker tripped (total {trip_count})",
                trips=trip_count,
            )
        )
        if flapping:
            fired.append(
                self._ledger.emit(
                    "breaker_flapping",
                    "critical",
                    component,
                    f"{recent} breaker trips in {self._flap_window_s:.0f}s",
                    recent_trips=recent,
                    window_s=self._flap_window_s,
                )
            )
        return fired


def cost_model_drift(
    timer,
    ledger: AlertLedger,
    *,
    component: str = "perfmodel",
    min_calls: int = 10,
    max_ratio: float = 3.0,
    min_wall_seconds: float = 1e-3,
) -> List[Alert]:
    """Flag kernel labels whose wall/modelled ratio drifted out of band.

    ``timer`` is a :class:`~repro.perfmodel.timer.KernelTimer` (duck
    typed: only ``records()`` is used).  A label alerts when it has at
    least ``min_calls`` calls, at least ``min_wall_seconds`` of measured
    wall time, and wall/modelled outside ``[1/max_ratio, max_ratio]`` —
    the modelled device no longer predicts the machine for that kernel,
    so every consumer of the cost model (batching policy, figures) is
    suspect.  One alert per drifted label per call; the caller holds them
    off (:class:`~repro.obs.health.HealthMonitor` deduplicates).
    """
    fired: List[Alert] = []
    for record in timer.records:
        if record.calls < min_calls:
            continue
        if record.wall_seconds < min_wall_seconds or record.model_seconds <= 0:
            continue
        ratio = record.wall_seconds / record.model_seconds
        if 1.0 / max_ratio <= ratio <= max_ratio:
            continue
        fired.append(
            ledger.emit(
                "cost_model_drift",
                "warning",
                f"{component}/{record.label}",
                f"wall/model ratio {ratio:.2f} for {record.label} ({record.precision})",
                label=record.label,
                precision=record.precision,
                ratio=ratio,
                calls=record.calls,
            )
        )
    return fired
