"""Structured logging for the serve stack (stdlib ``logging`` only).

The library logs under the ``"repro"`` logger namespace and installs a
``NullHandler`` there, so it is silent until the application configures
logging — the standard library-logging contract.  To see the events::

    import logging
    logging.basicConfig(level=logging.INFO)
    logging.getLogger("repro").setLevel(logging.INFO)

Events are single-line ``event key=value`` records (:func:`log_event`)
carrying the request/batch/tenant context fields of the site that
emitted them — breaker trips, session evictions, width-1 retries, farm
shutdown abandons — so a grep for ``breaker_open`` or ``tenant=alpha``
reconstructs an incident without a debugger.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["LOGGER_NAME", "get_logger", "log_event"]

#: Root of the library's logger namespace.
LOGGER_NAME = "repro"

logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """``repro`` logger, or the ``repro.<name>`` child when named."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return '"' + text.replace('"', '\\"') + '"'
    return text


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    exc_info: object = None,
    **fields: object,
) -> None:
    """Emit one structured ``event key=value ...`` line.

    Fields keep their call-site order (significant context first).  The
    early ``isEnabledFor`` exit keeps disabled logging near-free on the
    serve paths.
    """
    if not logger.isEnabledFor(level):
        return
    parts = [event]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    logger.log(level, " ".join(parts), exc_info=exc_info)
