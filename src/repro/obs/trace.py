"""Span-based request tracing for the serve stack.

A :class:`Tracer` hands out :class:`Span` objects — named intervals with
microsecond timestamps, a parent link, free-form attributes and point
events — and keeps the finished ones in a bounded in-memory buffer.  The
design goals, in order:

1. **Cheap when off.**  Tracing is opt-in (``ObsConfig.tracing`` on
   :class:`repro.config.ReproConfig`, or an explicit
   :func:`enable_tracing` call).  When it is off, the serve hot paths
   carry a single ``tracer is None`` check and allocate nothing.
2. **Thread-safe.**  Spans are started and finished from client threads,
   dispatcher threads and farm workers concurrently; all mutation of the
   shared buffer happens under one lock, and ``Span.finish`` is
   idempotent so racing closers are harmless.
3. **Viewable.**  :func:`export_chrome_trace` emits the Chrome
   trace-event JSON format, so a chaos-run timeline opens directly in
   ``chrome://tracing`` or https://ui.perfetto.dev.

:class:`RequestTrace` is the small state machine the serve layer drives:
one root ``request`` span per submitted right-hand side with
non-overlapping stage children (``submit`` → ``queued`` → ``dispatch``),
closed exactly once with a terminal outcome however the request ends
(served, deadline, cancel, abandon, error).

A tracer may carry a :class:`Sampler` for always-on production tracing:
head sampling decides *up front* which requests get a full span tree
(deterministic stride, so the configured rate is honored exactly), and
unsampled requests record only four stage timestamps — no spans, no
probe events — until their terminal outcome is known.  Tail rules then
retain the interesting ones anyway (failures, blown deadlines,
detector-flagged requests, the slowest decile), synthesizing their span
tree after the fact from the recorded timestamps.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..config import get_config

__all__ = [
    "Span",
    "Tracer",
    "Sampler",
    "RequestTrace",
    "enable_tracing",
    "disable_tracing",
    "default_tracer",
    "export_chrome_trace",
]

#: Default bound on the finished-span buffer (oldest spans are dropped).
DEFAULT_TRACE_CAPACITY = 65536


class Span:
    """One named interval in a trace.

    Timestamps are microseconds relative to the owning tracer's origin
    (``time.perf_counter`` based — monotonic, not wall-clock).  A span is
    mutated only by the thread(s) holding a reference to it; ``finish``
    is idempotent and may race safely.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "thread_id",
        "thread_name",
        "start_us",
        "end_us",
        "attrs",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        thread = threading.current_thread()
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self.start_us = tracer._now_us()
        self.end_us: Optional[float] = None
        self.attrs = attrs
        self.events: List[Tuple[str, float, Dict[str, object]]] = []

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        end = self.end_us if self.end_us is not None else self._tracer._now_us()
        return max(0.0, end - self.start_us)

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span (last write wins)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event inside the span.

        Events are appended without locking: each span's events come from
        the single thread currently driving that span (the solver probe
        hook), so the list is effectively thread-confined until finish.
        """
        self.events.append((name, self._tracer._now_us(), attrs))

    def finish(self, **attrs: object) -> None:
        """Close the span; subsequent calls are no-ops."""
        if attrs:
            self.attrs.update(attrs)
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = repr(exc)
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "open"
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {state})"
        )


class Sampler:
    """Adaptive trace-sampling policy: head stride + tail keep rules.

    *Head* sampling picks the fraction ``head_rate`` of requests that get
    a full, live span tree.  The decision uses a deterministic stride
    (keep when ``floor(n * rate)`` increments), so the realized rate
    matches the configured one exactly — no coin-flip variance.

    *Tail* rules run when a request's terminal outcome is known and keep
    its trace regardless of the head decision when the request

    * ended with anything other than ``converged`` / ``cancelled``
      (failures, breakdowns, blown deadlines, rejections, abandons),
    * was flagged by an anomaly detector
      (:meth:`RequestTrace.mark_keep`), or
    * landed in the slowest ``slow_fraction`` of the recent duration
      window (the "slowest decile" with the defaults).

    Thread-safe; one instance is shared by all requests of a tracer.
    """

    #: Terminal outcomes that say nothing interesting about the request.
    DROP_OUTCOMES = ("converged", "cancelled")

    def __init__(
        self,
        *,
        head_rate: float = 0.1,
        tail_keep: bool = True,
        slow_fraction: float = 0.1,
        slow_window: int = 512,
        min_slow_samples: int = 32,
    ) -> None:
        if not 0.0 <= head_rate <= 1.0:
            raise ValueError(f"head_rate must be in [0, 1], got {head_rate}")
        if not 0.0 < slow_fraction < 1.0:
            raise ValueError(f"slow_fraction must be in (0, 1), got {slow_fraction}")
        self.head_rate = float(head_rate)
        self.tail_enabled = bool(tail_keep)
        self.slow_fraction = float(slow_fraction)
        self._min_slow_samples = max(2, int(min_slow_samples))
        self._lock = threading.Lock()
        self._count = 0
        self._head_kept = 0
        self._durations: Deque[float] = deque(maxlen=max(16, int(slow_window)))
        self._threshold_us = float("inf")
        self._since_refresh = 0

    # -- head ----------------------------------------------------------- #
    def head_sample(self) -> bool:
        """Decide (at request creation) whether to trace this request live."""
        with self._lock:
            before = math.floor(self._count * self.head_rate)
            self._count += 1
            keep = math.floor(self._count * self.head_rate) > before
            if keep:
                self._head_kept += 1
            return keep

    # -- tail ----------------------------------------------------------- #
    def observe(self, duration_us: float) -> None:
        """Feed one finished request's duration into the slow-decile window."""
        with self._lock:
            self._durations.append(float(duration_us))
            self._since_refresh += 1
            ready = len(self._durations) >= self._min_slow_samples
            if ready and (
                self._since_refresh >= 32 or self._threshold_us == float("inf")
            ):
                ordered = sorted(self._durations)
                index = min(
                    len(ordered) - 1,
                    max(0, int(len(ordered) * (1.0 - self.slow_fraction))),
                )
                self._threshold_us = ordered[index]
                self._since_refresh = 0

    def is_slow(self, duration_us: float) -> bool:
        """Whether ``duration_us`` lands in the current slowest fraction."""
        with self._lock:
            return duration_us >= self._threshold_us

    def tail_keep(self, outcome: str, duration_us: float, flagged: bool) -> bool:
        """The tail decision for a head-unsampled request."""
        if not self.tail_enabled:
            return False
        if flagged or outcome not in self.DROP_OUTCOMES:
            return True
        return self.is_slow(duration_us)

    # -- stats ---------------------------------------------------------- #
    @property
    def requests_seen(self) -> int:
        with self._lock:
            return self._count

    @property
    def head_sampled(self) -> int:
        with self._lock:
            return self._head_kept


class Tracer:
    """Thread-safe span factory with a bounded finished-span buffer."""

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        sampler: Optional[Sampler] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._next_id = 1
        self._capacity = int(capacity)
        self._spans: List[Span] = []
        self._open = 0
        self._dropped = 0
        #: Optional :class:`Sampler`; ``None`` keeps every request trace.
        self.sampler = sampler
        self._sampled_out = 0

    # -- clock --------------------------------------------------------- #
    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    # -- span lifecycle ------------------------------------------------ #
    def start_span(
        self,
        name: str,
        *,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """Open a span.  ``parent=None`` starts a new trace (root span)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._open += 1
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = span_id, None
        return Span(self, name, trace_id, span_id, parent_id, attrs)

    def _finish(self, span: Span, *, end_us: Optional[float] = None) -> None:
        end = self._now_us() if end_us is None else float(end_us)
        with self._lock:
            if span.end_us is not None:
                return  # idempotent: first closer wins
            span.end_us = end
            self._open -= 1
            if len(self._spans) >= self._capacity:
                overflow = len(self._spans) - self._capacity + 1
                del self._spans[:overflow]
                self._dropped += overflow
            self._spans.append(span)

    def _emit_finished(
        self,
        name: str,
        *,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        start_us: float,
        end_us: float,
        attrs: Dict[str, object],
    ) -> Span:
        """Append an already-timed span (tail-kept trace synthesis)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._open += 1
        span = Span(
            self,
            name,
            span_id if trace_id is None else trace_id,
            span_id,
            parent_id,
            dict(attrs),
        )
        span.start_us = float(start_us)
        self._finish(span, end_us=max(float(start_us), float(end_us)))
        return span

    def _note_sampled_out(self) -> None:
        with self._lock:
            self._sampled_out += 1

    # -- inspection ---------------------------------------------------- #
    def finished_spans(self) -> List[Span]:
        """Snapshot of the finished-span buffer (oldest first)."""
        with self._lock:
            return list(self._spans)

    @property
    def open_spans(self) -> int:
        """Number of spans started but not yet finished (leak detector)."""
        with self._lock:
            return self._open

    @property
    def dropped_spans(self) -> int:
        """Finished spans evicted because the buffer was full."""
        with self._lock:
            return self._dropped

    @property
    def sampled_out_traces(self) -> int:
        """Request traces discarded by the sampler (head miss, no tail keep).

        With a sampler installed the ledger invariant becomes: kept
        ``request`` roots + ``sampled_out_traces`` == submitted requests.
        """
        with self._lock:
            return self._sampled_out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def spans_by_trace(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by ``trace_id`` (insertion order kept)."""
        groups: Dict[int, List[Span]] = {}
        for span in self.finished_spans():
            groups.setdefault(span.trace_id, []).append(span)
        return groups


class RequestTrace:
    """Per-request span state machine driven by the serve layer.

    One root ``request`` span plus a chain of non-overlapping stage
    children: ``submit`` (created open), then ``queued`` after admission,
    then ``dispatch`` once a worker pops the request into a batch.
    :meth:`finish` closes whatever stage is open plus the root, exactly
    once, stamping the terminal ``outcome`` — so every request yields one
    complete, properly-nested span tree no matter which path ends it.

    When the tracer carries a :class:`Sampler` and the head decision
    misses, the trace runs *deferred*: no spans are created, only the
    stage transition timestamps are recorded.  At :meth:`finish` the tail
    rules decide; a kept trace's span tree is synthesized from the
    timestamps (root attr ``sampled="tail"``), a dropped one costs four
    clock reads and is counted in ``Tracer.sampled_out_traces``.
    """

    __slots__ = ("tracer", "root", "_stage", "_done", "sampled", "_attrs", "_marks", "_flagged")

    def __init__(self, tracer: Tracer, **attrs: object) -> None:
        self.tracer = tracer
        self._done = False
        self._flagged = False
        sampler = tracer.sampler
        self.sampled = sampler is None or sampler.head_sample()
        if self.sampled:
            if sampler is not None:
                attrs = dict(attrs, sampled="head")
            self.root: Optional[Span] = tracer.start_span("request", **attrs)
            self._stage: Optional[Span] = tracer.start_span("submit", parent=self.root)
            self._attrs: Optional[Dict[str, object]] = None
            self._marks: Optional[List[Tuple[str, float]]] = None
        else:
            self.root = None
            self._stage = None
            self._attrs = dict(attrs)
            self._marks = [("submit", tracer._now_us())]

    def _advance(self, next_stage: Optional[str], **attrs: object) -> None:
        stage = self._stage
        if stage is not None:
            stage.finish(**attrs)
        self._stage = (
            self.tracer.start_span(next_stage, parent=self.root)
            if next_stage is not None
            else None
        )

    def submitted(self) -> None:
        """Admission done: close ``submit``, open ``queued``."""
        if self._done:
            return
        if self.sampled:
            self._advance("queued")
        else:
            self._marks.append(("queued", self.tracer._now_us()))

    def dequeued(self, **attrs: object) -> None:
        """Popped into a batch: close ``queued``, open ``dispatch``.

        ``attrs`` describe the dispatch (batch span id, block width) and
        are attached to the new ``dispatch`` span (for a deferred trace,
        to the synthesized root).
        """
        if self._done:
            return
        if self.sampled:
            self._advance("dispatch")
            if attrs and self._stage is not None:
                self._stage.set(**attrs)
        else:
            self._marks.append(("dispatch", self.tracer._now_us()))
            for key, value in attrs.items():
                if value is not None:
                    self._attrs[key] = value

    def event(self, name: str, **attrs: object) -> None:
        if self.root is not None:
            self.root.event(name, **attrs)

    def mark_keep(self, reason: str = "alert") -> None:
        """Force tail retention of this trace (an anomaly detector fired).

        Must be called before :meth:`finish` to affect a deferred trace's
        retention; on a head-sampled trace it just stamps the reason.
        """
        self._flagged = True
        if self.sampled:
            self.root.set(keep_reason=reason)
        else:
            self._attrs.setdefault("keep_reason", reason)

    def finish(self, outcome: str, **attrs: object) -> None:
        """Terminal transition; idempotent (first outcome wins)."""
        if self._done:
            return
        self._done = True
        tracer = self.tracer
        sampler = tracer.sampler
        if self.sampled:
            self._advance(None)
            self.root.finish(outcome=outcome, **attrs)
            if sampler is not None:
                sampler.observe(self.root.duration_us)
            return
        end = tracer._now_us()
        start = self._marks[0][1]
        duration = max(0.0, end - start)
        sampler.observe(duration)
        if not sampler.tail_keep(outcome, duration, self._flagged):
            tracer._note_sampled_out()
            return
        # Tail-kept: synthesize the span tree from the stage timestamps.
        root_attrs = dict(self._attrs)
        root_attrs.update(attrs)
        root_attrs["outcome"] = outcome
        root_attrs["sampled"] = "tail"
        root = tracer._emit_finished(
            "request", start_us=start, end_us=end, attrs=root_attrs
        )
        for i, (name, stage_start) in enumerate(self._marks):
            stage_end = self._marks[i + 1][1] if i + 1 < len(self._marks) else end
            tracer._emit_finished(
                name,
                trace_id=root.trace_id,
                parent_id=root.span_id,
                start_us=stage_start,
                end_us=stage_end,
                attrs={},
            )
        self.root = root

    @classmethod
    def rejected(cls, tracer: Tracer, outcome: str, **attrs: object) -> "RequestTrace":
        """One-shot trace for a synchronous admission rejection.

        Telemetry counts sync rejections as submitted *and* failed, so
        the span ledger mirrors that with an immediately-closed tree.
        """
        trace = cls(tracer, **attrs)
        trace.finish(outcome)
        return trace


# ---------------------------------------------------------------------- #
# process-default tracer                                                 #
# ---------------------------------------------------------------------- #
_DEFAULT_LOCK = threading.Lock()
_DEFAULT_TRACER: Optional[Tracer] = None
_EXPLICIT = False
_UNSET = object()


def _config_sampler(cfg) -> Optional[Sampler]:
    """Sampler implied by an :class:`repro.config.ObsConfig` (or ``None``)."""
    if cfg.sample_rate >= 1.0:
        return None
    return Sampler(head_rate=cfg.sample_rate, tail_keep=cfg.tail_keep)


def enable_tracing(*, capacity: Optional[int] = None, sampler=_UNSET) -> Tracer:
    """Install (and return) a fresh process-default tracer.

    Overrides the config-driven default until :func:`disable_tracing`.
    ``sampler`` defaults to whatever the active config implies
    (``ObsConfig.sample_rate`` / ``tail_keep``); pass an explicit
    :class:`Sampler` or ``None`` to override.
    """
    global _DEFAULT_TRACER, _EXPLICIT
    cfg = get_config().obs
    if sampler is _UNSET:
        sampler = _config_sampler(cfg)
    tracer = Tracer(capacity=capacity or cfg.trace_capacity, sampler=sampler)
    with _DEFAULT_LOCK:
        _DEFAULT_TRACER = tracer
        _EXPLICIT = True
    return tracer


def disable_tracing() -> None:
    """Drop the process-default tracer (config ``tracing`` is ignored too)."""
    global _DEFAULT_TRACER, _EXPLICIT
    with _DEFAULT_LOCK:
        _DEFAULT_TRACER = None
        _EXPLICIT = True


def default_tracer() -> Optional[Tracer]:
    """The process-default tracer, or ``None`` when tracing is off.

    Resolution order: an explicit :func:`enable_tracing` /
    :func:`disable_tracing` call wins; otherwise ``get_config().obs``
    decides, creating the shared tracer lazily on first use.
    """
    global _DEFAULT_TRACER
    with _DEFAULT_LOCK:
        if _EXPLICIT:
            return _DEFAULT_TRACER
        cfg = get_config().obs
        if not cfg.tracing:
            return None
        if _DEFAULT_TRACER is None:
            _DEFAULT_TRACER = Tracer(
                capacity=cfg.trace_capacity, sampler=_config_sampler(cfg)
            )
        return _DEFAULT_TRACER


def _reset_default_tracer() -> None:
    """Test hook: forget any explicit/lazy default tracer."""
    global _DEFAULT_TRACER, _EXPLICIT
    with _DEFAULT_LOCK:
        _DEFAULT_TRACER = None
        _EXPLICIT = False


# ---------------------------------------------------------------------- #
# Chrome trace-event export                                              #
# ---------------------------------------------------------------------- #
def export_chrome_trace(
    path=None,
    *,
    tracer: Optional[Tracer] = None,
) -> Dict[str, object]:
    """Render finished spans as Chrome trace-event JSON.

    Returns the payload dict; when ``path`` is given the JSON is also
    written there.  Open the file in ``chrome://tracing`` or
    https://ui.perfetto.dev.  Spans become complete (``"ph": "X"``)
    events on their originating thread's track; span events become
    thread-scoped instant (``"ph": "i"``) events.
    """
    tracer = tracer if tracer is not None else default_tracer()
    if tracer is None:
        raise RuntimeError(
            "tracing is not enabled: pass tracer=, call "
            "repro.obs.enable_tracing(), or set ObsConfig(tracing=True)"
        )
    events: List[Dict[str, object]] = []
    thread_names: Dict[int, str] = {}
    for span in tracer.finished_spans():
        thread_names.setdefault(span.thread_id, span.thread_name)
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": span.thread_id,
                "ts": round(span.start_us, 3),
                "dur": round(max(0.0, (span.end_us or span.start_us) - span.start_us), 3),
                "args": args,
            }
        )
        for name, ts, attrs in span.events:
            events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": span.thread_id,
                    "ts": round(ts, 3),
                    "args": dict(attrs, span_id=span.span_id),
                }
            )
    for tid, name in sorted(thread_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "dropped_spans": tracer.dropped_spans},
    }
    if path is not None:
        with open(path, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
    return payload
