"""Solver convergence probes.

Every solver driver accepts an optional ``probe=`` callable and feeds it
:class:`ProbeEvent` records at its natural observation points — restart
boundaries for GMRES variants, refinement steps for the IR variants,
explicit-residual recomputes for CG — plus one terminal event carrying
the final :class:`~repro.solvers.status.SolverStatus`.  The hook rides
the cadence the solvers already have for ``SolveControl`` polling and
explicit-residual checks, so enabling it adds no extra kernel work.

The serve layer turns probes into span events (:func:`span_probe`), but
the hook is public: pass any callable to ``gmres(..., probe=...)`` to
watch convergence live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["ProbeEvent", "PROBE_KINDS", "span_probe"]

#: Event kinds, in the order a solve emits them.
#: ``restart``    — GMRES/Block-GMRES restart boundary (explicit residual);
#: ``refinement`` — GMRES-IR/Block-GMRES-IR outer refinement boundary;
#: ``residual``   — CG explicit-residual recompute;
#: ``terminal``   — exactly one per solve, carrying the final status.
PROBE_KINDS = ("restart", "refinement", "residual", "terminal")


@dataclass(frozen=True)
class ProbeEvent:
    """One observation from inside a running solver.

    ``residual`` is the relative residual at the boundary (for block
    solvers: the worst — maximum — relative residual over the columns
    that were active entering the boundary).  ``active``/``deflated``
    only carry information for block solvers: how many columns remain
    active after the boundary and how many were deflated *at* it.
    ``status`` is ``None`` except on ``terminal`` events, where it is the
    final :class:`~repro.solvers.status.SolverStatus` (for block solvers
    the terminal status arrives in ``extra["statuses"]`` per column
    instead, since columns can end for different reasons).
    """

    solver: str
    kind: str
    iteration: int
    restarts: int
    residual: float
    active: int = 1
    deflated: int = 0
    status: Optional[object] = None
    extra: Dict[str, object] = field(default_factory=dict)


def span_probe(span) -> Callable[[ProbeEvent], None]:
    """Adapt a :class:`~repro.obs.trace.Span` into a ``probe=`` callable.

    Each probe event becomes a point event on the span, named
    ``"<solver>:<kind>"`` — visible as instant markers on the solve
    track in the exported Chrome trace.
    """

    def _probe(event: ProbeEvent) -> None:
        attrs: Dict[str, object] = {
            "iteration": event.iteration,
            "restarts": event.restarts,
            "residual": event.residual,
        }
        if event.active != 1 or event.deflated:
            attrs["active"] = event.active
            attrs["deflated"] = event.deflated
        if event.status is not None:
            attrs["status"] = getattr(event.status, "name", str(event.status))
        if event.extra:
            attrs.update(event.extra)
        span.event(f"{event.solver}:{event.kind}", **attrs)

    return _probe
