"""Metrics registry with Prometheus text exposition.

Counters, gauges and histograms behind a :class:`MetricsRegistry`, plus
*collectors* — callbacks run at scrape time that mirror the stack's
existing snapshot state (:class:`~repro.serve.telemetry.ServeTelemetry`,
:class:`~repro.serve.telemetry.FarmTelemetry`, circuit-breaker states,
registry occupancy, :class:`~repro.perfmodel.timer.KernelTimer` records)
into instruments.  The pull model keeps the serve hot paths untouched:
nothing is published per request; ``prometheus_text()`` samples whatever
the telemetry already maintains.

Metric names are validated at creation against the project convention —
snake_case with a ``repro_`` prefix (:data:`METRIC_NAME_RE`) — and the
full catalog the built-in collectors emit is :data:`METRIC_NAMES`, which
``tools/check_metric_names.py`` lints in CI.

Everything here is stdlib + the registry's own locking; the optional
HTTP exporter (:func:`start_metrics_server`) uses ``http.server`` only.
"""

from __future__ import annotations

import re
import threading
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "prometheus_text",
    "start_metrics_server",
    "MetricsHTTPServer",
    "watch_session",
    "watch_farm",
    "watch_timer",
    "METRIC_NAMES",
    "METRIC_NAME_RE",
]

#: Project metric-name convention: snake_case, ``repro_`` prefix.
METRIC_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_LABEL_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Catalog of every metric the built-in collectors publish.  Kept as a
#: module constant so the CI metrics-name lint can validate the whole
#: surface without instantiating a farm.
METRIC_NAMES = (
    # request ledger (per session / tenant / fleet, via `scope`+`name`)
    "repro_requests_submitted_total",
    "repro_requests_completed_total",
    "repro_requests_failed_total",
    "repro_requests_retried_total",
    "repro_requests_timed_out_total",
    "repro_requests_cancelled_total",
    # batching
    "repro_batches_dispatched_total",
    "repro_block_iterations_total",
    "repro_batch_occupancy_mean",
    # latency + throughput (windowed summaries, exported as gauges)
    "repro_request_latency_ms",
    "repro_rhs_per_second",
    # farm lifecycle
    "repro_queue_depth",
    "repro_sessions_live",
    "repro_sessions_created_total",
    "repro_session_evictions_total",
    "repro_admission_rejections_total",
    "repro_breaker_trips_total",
    "repro_breaker_state",
    "repro_session_bytes_estimated",
    # per-kernel cost-model drift (from KernelTimer records)
    "repro_kernel_calls_total",
    "repro_kernel_model_seconds_total",
    "repro_kernel_wall_seconds_total",
    "repro_kernel_wall_model_ratio",
    # SLO engine + health surface (published by obs.health.watch_health)
    "repro_slo_availability_ratio",
    "repro_slo_burn_rate",
    "repro_slo_latency_quantile_ms",
    "repro_slo_error_budget_remaining_ratio",
    "repro_slo_breached",
    "repro_alerts_total",
    "repro_alerts_active",
    "repro_health_state",
)

#: Default histogram buckets (seconds) — spans sub-millisecond kernels
#: through multi-second batched solves.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _validate_name(name: str) -> str:
    if not METRIC_NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the convention "
            f"(snake_case with a 'repro_' prefix: {METRIC_NAME_RE.pattern})"
        )
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Instrument:
    """Shared machinery: labelled sample storage under a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = _validate_labelnames(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[label]) for label in self.labelnames)

    def _render_labels(self, key: Tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{label}="{_escape_label_value(value)}"'
            for label, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{self._render_labels(key)} {_format_value(value)}"
            for key, value in items
        ]

    def remove_matching(self, predicate: Callable[[Dict[str, str]], bool]) -> int:
        """Drop every labelled series whose label dict satisfies ``predicate``.

        This is how collectors retire a closed source's samples: setting a
        gauge to zero would lie, leaving it frozen at the last value lies
        harder.  Returns the number of series removed.
        """
        with self._lock:
            stale = [
                key
                for key in self._values
                if predicate(dict(zip(self.labelnames, key)))
            ]
            for key in stale:
                del self._values[key]
        return len(stale)

    def expose(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self.samples())
        return lines


class Counter(_Instrument):
    """Monotonic counter.

    ``inc`` is the live-instrumentation path; ``set`` exists for the
    snapshot-mirroring collectors, which copy an already-monotonic
    lifetime counter (e.g. ``requests_submitted``) at scrape time.
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)


class Gauge(_Instrument):
    """Point-in-time value (queue depth, breaker state, ratios)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.buckets = tuple(bounds)
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._sums[key] += float(value)
            self._totals[key] += 1

    def samples(self) -> List[str]:
        lines: List[str] = []
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
            totals = dict(self._totals)
        for key, counts in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                labels = self._render_labels(
                    key, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = self._render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {totals[key]}")
            lines.append(
                f"{self.name}_sum{self._render_labels(key)} "
                f"{_format_value(sums[key])}"
            )
            lines.append(f"{self.name}_count{self._render_labels(key)} {totals[key]}")
        return lines

    def remove_matching(self, predicate: Callable[[Dict[str, str]], bool]) -> int:
        with self._lock:
            stale = [
                key
                for key in self._counts
                if predicate(dict(zip(self.labelnames, key)))
            ]
            for key in stale:
                del self._counts[key]
                del self._sums[key]
                del self._totals[key]
        return len(stale)


class MetricsRegistry:
    """Instrument namespace + scrape-time collector list."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[["MetricsRegistry"], Optional[bool]]] = []

    # -- instrument factories (get-or-create) -------------------------- #
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, labelnames, **kwargs)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"not {cls.kind}"
            )
        if tuple(labelnames) != instrument.labelnames:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{instrument.labelnames}, not {tuple(labelnames)}"
            )
        return instrument

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- collectors ----------------------------------------------------- #
    def register_collector(
        self, collector: Callable[["MetricsRegistry"], Optional[bool]]
    ) -> None:
        """Register a scrape-time callback.

        The collector is called with this registry on every
        :meth:`collect`; returning ``False`` unregisters it (the built-in
        watchers do this when their watched object has been collected).
        """
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run all collectors, dropping the ones that signal retirement."""
        with self._lock:
            collectors = list(self._collectors)
        dead = [c for c in collectors if c(self) is False]
        if dead:
            with self._lock:
                for collector in dead:
                    if collector in self._collectors:
                        self._collectors.remove(collector)

    def remove_matching(self, predicate: Callable[[Dict[str, str]], bool]) -> int:
        """Drop matching series from every instrument (see the instrument
        method); used by the watchers to retire closed sources."""
        with self._lock:
            instruments = list(self._instruments.values())
        return sum(
            instrument.remove_matching(predicate) for instrument in instruments
        )

    # -- exposition ----------------------------------------------------- #
    def expose(self) -> str:
        """Prometheus text exposition format 0.0.4 (runs collectors first)."""
        self.collect()
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        for _, instrument in instruments:
            lines.extend(instrument.expose())
        return "\n".join(lines) + ("\n" if lines else "")


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the serve layer publishes into."""
    return _DEFAULT_REGISTRY


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Scrape ``registry`` (default: the process registry) as text."""
    return (registry or _DEFAULT_REGISTRY).expose()


# ---------------------------------------------------------------------- #
# built-in collectors: mirror the stack's snapshots at scrape time       #
# ---------------------------------------------------------------------- #
def _publish_serve_stats(
    registry: MetricsRegistry, stats, *, scope: str, name: str
) -> None:
    """Mirror one :class:`ServeStats` snapshot into the registry."""
    labels = ("scope", "name")
    where = dict(scope=scope, name=name)
    counters = (
        ("repro_requests_submitted_total", "Requests submitted (incl. sync rejections).", stats.requests_submitted),
        ("repro_requests_completed_total", "Requests whose future resolved with a result.", stats.requests_completed),
        ("repro_requests_failed_total", "Requests whose future resolved with an exception.", stats.requests_failed),
        ("repro_requests_retried_total", "Requests re-solved through the width-1 retry path.", stats.requests_retried),
        ("repro_requests_timed_out_total", "Requests that hit their deadline (queue or mid-solve).", stats.requests_timed_out),
        ("repro_requests_cancelled_total", "Requests cancelled by their client.", stats.requests_cancelled),
        ("repro_batches_dispatched_total", "Batched solves dispatched.", stats.batches_dispatched),
        ("repro_block_iterations_total", "Block-Arnoldi steps across all dispatches.", stats.block_iterations),
    )
    for metric, help, value in counters:
        registry.counter(metric, help, labels).set(value, **where)
    registry.gauge(
        "repro_batch_occupancy_mean",
        "Mean dispatched block width (micro-batching coalescing).",
        labels,
    ).set(stats.mean_batch_occupancy, **where)
    registry.gauge(
        "repro_rhs_per_second",
        "Completed requests per second of service uptime.",
        labels,
    ).set(stats.rhs_per_second, **where)
    latency = registry.gauge(
        "repro_request_latency_ms",
        "Windowed latency summaries (stage = queue_wait|solve|total).",
        ("scope", "name", "stage", "quantile"),
    )
    for stage, summary in (
        ("queue_wait", stats.queue_wait),
        ("solve", stats.solve),
        ("total", stats.latency),
    ):
        for quantile, value in (
            ("mean", summary.mean_ms),
            ("p50", summary.p50_ms),
            ("p95", summary.p95_ms),
            ("max", summary.max_ms),
        ):
            latency.set(value, stage=stage, quantile=quantile, **where)


def watch_session(session, *, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish an :class:`~repro.serve.session.OperatorSession`'s stats.

    Holds only a weak reference.  The collector retires — and drops the
    session's series from exposition, so a scrape never shows frozen
    last-known values — once the session is garbage-collected, closed,
    or released by the registry (its scheduler closed).
    """
    registry = registry or _DEFAULT_REGISTRY
    ref = weakref.ref(session)
    session_name = session.name

    def stale(labels: Dict[str, str]) -> bool:
        return labels.get("scope") == "session" and labels.get("name") == session_name

    def collect(reg: MetricsRegistry):
        live = ref()
        if live is None or live.closed or live.scheduler.closed:
            reg.remove_matching(stale)
            return False
        _publish_serve_stats(reg, live.stats(), scope="session", name=live.name)

    registry.register_collector(collect)


def watch_farm(farm, *, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish a :class:`~repro.serve.farm.SolverFarm`'s full snapshot.

    Fleet-level serve stats, per-tenant queue depths and breaker states,
    and the registry lifecycle counters — all sampled at scrape time from
    ``farm.stats()``.
    """
    registry = registry or _DEFAULT_REGISTRY
    ref = weakref.ref(farm)
    watched_name = farm.name

    def stale(labels: Dict[str, str]) -> bool:
        # Fleet + tenant serve stats carry scope="farm"/"tenant"; the farm
        # lifecycle gauges and per-tenant queue/breaker gauges carry no
        # scope label.  A session that happens to share the farm's name
        # keeps its scope="session" series.
        name = labels.get("name")
        if name is None or (
            name != watched_name and not name.startswith(watched_name + "/")
        ):
            return False
        return labels.get("scope", "farm") in ("farm", "tenant")

    def collect(reg: MetricsRegistry):
        live = ref()
        if live is None or live.closed:
            reg.remove_matching(stale)
            return False
        stats = live.stats()
        farm_name = live.name
        _publish_serve_stats(reg, stats.fleet, scope="farm", name=farm_name)
        for key, tenant in stats.tenants.items():
            _publish_serve_stats(
                reg, tenant.serve, scope="tenant", name=f"{farm_name}/{key}"
            )
        farm_labels = ("name",)
        reg.gauge(
            "repro_sessions_live", "Warm sessions resident in the registry.", farm_labels
        ).set(stats.sessions_live, name=farm_name)
        reg.counter(
            "repro_sessions_created_total",
            "Sessions built (or rebuilt after eviction).",
            farm_labels,
        ).set(stats.sessions_created, name=farm_name)
        reg.counter(
            "repro_session_evictions_total", "LRU session evictions.", farm_labels
        ).set(stats.evictions, name=farm_name)
        reg.counter(
            "repro_admission_rejections_total",
            "Requests rejected at admission (backpressure + open breakers).",
            farm_labels,
        ).set(stats.rejections, name=farm_name)
        reg.counter(
            "repro_breaker_trips_total", "Circuit-breaker trips.", farm_labels
        ).set(stats.breaker_trips, name=farm_name)
        reg.gauge(
            "repro_session_bytes_estimated",
            "Estimated resident bytes of warm sessions.",
            farm_labels,
        ).set(stats.estimated_session_bytes, name=farm_name)
        depth = reg.gauge(
            "repro_queue_depth", "Queued requests per tenant.", ("name", "tenant")
        )
        for key, tenant in stats.tenants.items():
            depth.set(tenant.queue_depth, name=farm_name, tenant=key)
        breaker = reg.gauge(
            "repro_breaker_state",
            "Circuit-breaker state per tenant (0=closed, 1=open, 2=half_open).",
            ("name", "tenant"),
        )
        for key, state in live.breaker_states().items():
            breaker.set(state, name=farm_name, tenant=key)

    registry.register_collector(collect)


def watch_timer(
    timer, *, registry: Optional[MetricsRegistry] = None, backend: str = ""
) -> None:
    """Publish per-kernel wall-vs-model drift from a ``KernelTimer``.

    The ratio ``wall / model`` per kernel label is the cost-model
    calibration signal the ROADMAP's autotuning item consumes: 1.0 means
    the analytic model still predicts this machine; sustained drift means
    the model (or the machine) changed.
    """
    registry = registry or _DEFAULT_REGISTRY
    ref = weakref.ref(timer)
    timer_name = timer.name

    def collect(reg: MetricsRegistry):
        live = ref()
        if live is None:
            reg.remove_matching(
                lambda series: series.get("timer") == timer_name
            )
            return False
        labels = ("timer", "label", "precision", "backend")
        calls = reg.counter(
            "repro_kernel_calls_total", "Kernel invocations metered.", labels
        )
        model = reg.counter(
            "repro_kernel_model_seconds_total",
            "Modelled kernel seconds (analytic V100 cost model).",
            labels,
        )
        wall = reg.counter(
            "repro_kernel_wall_seconds_total", "Measured kernel wall seconds.", labels
        )
        ratio = reg.gauge(
            "repro_kernel_wall_model_ratio",
            "Measured/modelled seconds per kernel label (cost-model drift).",
            ("timer", "label", "backend"),
        )
        wall_by_label: Dict[str, float] = {}
        model_by_label: Dict[str, float] = {}
        for record in live.records:
            where = dict(
                timer=live.name,
                label=record.label,
                precision=record.precision,
                backend=backend,
            )
            calls.set(record.calls, **where)
            model.set(record.model_seconds, **where)
            wall.set(record.wall_seconds, **where)
            wall_by_label[record.label] = (
                wall_by_label.get(record.label, 0.0) + record.wall_seconds
            )
            model_by_label[record.label] = (
                model_by_label.get(record.label, 0.0) + record.model_seconds
            )
        for label, wall_seconds in wall_by_label.items():
            model_seconds = model_by_label.get(label, 0.0)
            if model_seconds > 0:
                ratio.set(
                    wall_seconds / model_seconds,
                    timer=live.name,
                    label=label,
                    backend=backend,
                )

    registry.register_collector(collect)


# ---------------------------------------------------------------------- #
# optional stdlib-only HTTP exporter                                     #
# ---------------------------------------------------------------------- #
class MetricsHTTPServer:
    """Serve ``/metrics`` (and, with a health monitor, ``/healthz`` +
    ``/slo``) from a daemon thread (``http.server`` only).

    ``health`` is duck-typed (a :class:`~repro.obs.health.HealthMonitor`
    in practice — this module stays import-free of the health layer):
    ``/healthz`` renders ``health.health().as_dict()`` as JSON with
    status 200, or 503 when overall state is ``unhealthy``; ``/slo``
    renders the per-scope SLO evaluation.  Without a monitor both paths
    are 404, exactly as before.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        health=None,
    ) -> None:
        import json
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        def expose() -> bytes:
            return registry.expose().encode("utf-8")

        class Handler(BaseHTTPRequestHandler):
            def _send(self, status: int, body: bytes, content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?")[0]
                if path in ("/", "/metrics"):
                    self._send(
                        200,
                        expose(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                    return
                if health is not None and path == "/healthz":
                    report = health.health()
                    body = json.dumps(report.as_dict(), indent=2).encode("utf-8")
                    status = 503 if report.state == "unhealthy" else 200
                    self._send(status, body, "application/json; charset=utf-8")
                    return
                if health is not None and path == "/slo":
                    payload = {
                        scope: status.as_dict()
                        for scope, status in health.slo.evaluate().items()
                    }
                    body = json.dumps(payload, indent=2).encode("utf-8")
                    self._send(200, body, "application/json; charset=utf-8")
                    return
                self.send_error(404)

            def log_message(self, format: str, *args: object) -> None:
                pass  # stay quiet: this is a metrics sidecar, not a web app

        self._server = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-metrics-exporter-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def start_metrics_server(
    port: int = 0,
    *,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
    health=None,
) -> MetricsHTTPServer:
    """Start the HTTP exporter; ``port=0`` picks a free port.

    Pass a :class:`~repro.obs.health.HealthMonitor` as ``health`` to also
    serve ``/healthz`` and ``/slo``.  Returns the running server
    (``.url``, ``.port``, ``.close()``).
    """
    return MetricsHTTPServer(
        registry or _DEFAULT_REGISTRY, host=host, port=port, health=health
    )
