"""Benchmark regenerating Figures 6 + 7: polynomial-preconditioned GMRES vs GMRES-IR."""

from repro.experiments import fig6_fig7_poly_prec

from _harness import run_once


def test_figures6_7_polynomial_preconditioning_stretched2d(
    benchmark, experiment_config, record_report
):
    report = run_once(benchmark, lambda: fig6_fig7_poly_prec.run(experiment_config))
    record_report(report, "figure6_7_poly_preconditioning")

    rows = {row["configuration"]: row for row in report.rows}
    base = rows["fp64 GMRES + fp64 poly"]
    mixed = rows["fp64 GMRES + fp32 poly"]
    ir = rows["GMRES-IR + fp32 poly"]

    # Figure 6: all three configurations converge to the fp64-level tolerance
    # with nearly identical iteration counts.
    assert base["status"] == mixed["status"] == ir["status"] == "converged"
    assert ir["relative residual (fp64)"] <= 1e-10
    assert abs(mixed["iterations"] - base["iterations"]) <= report.parameters["restart"]

    # Figure 7: fp32 preconditioning already helps, GMRES-IR is the fastest
    # (paper: 1.58x over the all-fp64 configuration).
    assert mixed["speedup vs fp64 prec"] > 1.2
    assert ir["speedup vs fp64 prec"] > 1.3
    assert ir["solve time [model s]"] <= mixed["solve time [model s]"] * 1.05

    # Polynomial preconditioning shifts the cost toward the SpMV (64% in the
    # paper vs 15% unpreconditioned).
    assert base["SpMV share"] > 0.4
