"""Benchmark regenerating Figure 4 + Table I: kernel breakdown and speedups on BentPipe2D."""

from repro.experiments import fig4_table1_kernel_breakdown

from _harness import run_once


def test_figure4_table1_kernel_breakdown_bentpipe(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: fig4_table1_kernel_breakdown.run(experiment_config))
    record_report(report, "figure4_table1_kernel_breakdown")

    speedups = {row["kernel"]: row["speedup"] for row in report.rows}
    # Table I shape: SpMV gains the most (≈2.5x), orthogonalization kernels
    # gain modestly, the total lands between them.
    assert speedups["SpMV"] > 2.0
    assert 1.0 < speedups["GEMV (Trans)"] < speedups["GEMV (No Trans)"] < speedups["SpMV"]
    assert 1.0 < speedups["Norm"] < speedups["SpMV"]
    assert 1.1 < speedups["Total Time"] < 1.7
    # Figure 4 shape: orthogonalization dominates the unpreconditioned solve.
    assert report.parameters["orthogonalization share (double)"] > 0.6
