"""Benchmark regenerating Section V-F: preconditioner complexity vs fp32 rounding error."""

from repro.experiments import sec5f_poly_degree

from _harness import run_once


def test_section5f_poly_degree_stability(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: sec5f_poly_degree.run(experiment_config))
    record_report(report, "section5f_poly_degree_stability")

    rows = report.rows
    # fp64-applied polynomials converge at every degree (paper).
    assert all(r["fp64 poly status"] == "converged" for r in rows)
    # fp32-applied polynomials: fine at low degree, loss of accuracy at high
    # degree — the onset must exist within the swept range.
    statuses = [r["fp32 poly status"] for r in rows]
    assert statuses[0] == "converged"
    assert "loss_of_accuracy" in statuses
    onset = statuses.index("loss_of_accuracy")
    assert all(s == "loss_of_accuracy" or s == "converged" for s in statuses)
    # Beyond the onset the true residual is stuck well above the tolerance
    # while the implicit residual pretends to have converged.
    bad = rows[-1]
    assert bad["fp32 poly true residual"] > 1e-9
    assert bad["fp32 poly implicit residual"] < 1e-9
    # GMRES-IR with the same fp32 polynomial at the highest degree recovers.
    assert "GMRES-IR at highest degree" in report.parameters
    assert "converged" in report.parameters["GMRES-IR at highest degree"]
