"""Benchmark regenerating Figure 8: restart-size sweep on Laplace3D (large-subspace stall)."""

from repro.experiments import fig8_restart_laplace3d

from _harness import run_once


def test_figure8_restart_sweep_laplace3d(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: fig8_restart_laplace3d.run(experiment_config))
    record_report(report, "figure8_restart_sweep_laplace3d")

    rows = report.rows
    small = rows[0]
    large = rows[-1]

    # Paper shape: at modest restart sizes GMRES-IR gives a clear speedup;
    # once the restart approaches the unrestarted iteration count, the inner
    # fp32 solver stalls inside the long cycle, GMRES-IR needs a multiple of
    # the fp64 iterations, and the speedup disappears.
    assert small["speedup"] > 1.15
    assert large["IR/double iteration ratio"] > 1.8
    assert large["speedup"] < 1.0
    # Basis memory grows linearly with the restart length (the OOM concern).
    assert large["basis memory [MB]"] > small["basis memory [MB]"] * 5
