"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not part of the paper's tables/figures; these quantify the library's own
choices so downstream users can see what each one buys:

* CGS2 (the paper's orthogonalization) vs single-pass CGS vs MGS —
  robustness vs kernel-launch count.
* Polynomial application via Leja-ordered harmonic-Ritz roots (product form)
  vs the naive power-basis Horner form — fp32 stability.
* GMRES-IR refinement frequency (every cycle vs every other cycle).
* Raw kernel wall time of the vectorised CSR SpMV (the one genuinely
  micro-benchmark-style entry, with several rounds).
"""

import numpy as np
import pytest

from repro import ones_rhs
from repro.linalg import use_device
from repro.matrices import bentpipe2d, stretched2d
from repro.perfmodel import get_device
from repro.preconditioners import GmresPolynomialPreconditioner
from repro.solvers import gmres, gmres_ir


@pytest.fixture(scope="module")
def bentpipe():
    return bentpipe2d(64)


class TestOrthogonalizationAblation:
    @pytest.mark.parametrize("ortho", ["cgs", "cgs2", "mgs"])
    def test_ortho_variant(self, benchmark, bentpipe, ortho):
        b = ones_rhs(bentpipe)

        def solve():
            return gmres(bentpipe, b, restart=25, tol=1e-8, ortho=ortho, max_restarts=300)

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        assert result.converged
        # CGS2 must not need substantially more iterations than MGS, while
        # using far fewer kernel launches per iteration than MGS.
        if ortho == "cgs2":
            assert result.timer.total_calls() / result.iterations < 12


class TestPolynomialApplicationAblation:
    @pytest.mark.parametrize("method", ["roots", "power"])
    def test_apply_method_fp32_stability(self, benchmark, method):
        matrix = stretched2d(96, stretch=8)
        b = ones_rhs(matrix)
        M = GmresPolynomialPreconditioner(matrix, degree=10, precision="single",
                                          apply_method=method)

        def solve():
            return gmres(matrix, b, restart=25, tol=1e-8, preconditioner=M, max_restarts=100)

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        if method == "roots":
            # The product form over Leja-ordered roots is the stable one.
            assert result.relative_residual_fp64 < 1e-6


class TestRefinementFrequencyAblation:
    @pytest.mark.parametrize("refine_every", [1, 2])
    def test_refinement_frequency(self, benchmark, bentpipe, refine_every):
        b = ones_rhs(bentpipe)
        device = get_device("v100").scaled(bentpipe.n_rows / 1500 ** 2)

        def solve():
            with use_device(device):
                return gmres_ir(bentpipe, b, restart=25, tol=1e-8,
                                refine_every=refine_every, max_restarts=300)

        result = benchmark.pedantic(solve, rounds=1, iterations=1)
        assert result.converged
        assert result.relative_residual_fp64 < 1e-8


class TestKernelWallTime:
    def test_spmv_wall_time(self, benchmark, bentpipe):
        """Actual CPU wall time of the vectorised CSR SpMV (not modelled time)."""
        x = np.ones(bentpipe.n_cols)
        out = np.zeros(bentpipe.n_rows)
        benchmark(bentpipe.matvec, x, out)
        np.testing.assert_allclose(out, bentpipe.to_scipy() @ x, atol=1e-12)

    def test_spmv_fp32_wall_time(self, benchmark, bentpipe):
        A32 = bentpipe.astype("single")
        x = np.ones(A32.n_cols, dtype=np.float32)
        benchmark(A32.matvec, x)
