"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper via the
corresponding :mod:`repro.experiments` driver, times it with
pytest-benchmark (a single round — these are experiment reproductions, not
micro-benchmarks), and writes the paper-shaped report to
``benchmarks/results/<name>.txt`` so the numbers that went into
EXPERIMENTS.md can be regenerated with one command:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.config import rng as shared_rng
from repro.experiments import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(name="rng")
def rng_fixture() -> np.random.Generator:
    """Shared deterministic generator for stochastic benchmark inputs.

    Delegates to the canonical :func:`repro.config.rng` helper (seeded
    from ``ReproConfig.seed``), the same one the test suite and the
    harness CLI use, so CI benchmark runs are reproducible.
    """
    return shared_rng()


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Full-size (non-quick) configuration used by all benchmarks."""
    return ExperimentConfig(quick=False)


@pytest.fixture
def record_report(request):
    """Write an ExperimentReport to benchmarks/results/ and echo it."""

    def _record(report, name: str | None = None):
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = name or request.node.name
        path = RESULTS_DIR / f"{stem}.txt"
        text = report.format()
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")
        return report

    return _record


