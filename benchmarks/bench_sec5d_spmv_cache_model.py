"""Benchmark regenerating Section V-D: the CSR SpMV cache-reuse / speedup model."""

from repro.experiments import sec5d_spmv_model
from repro.perfmodel.spmv_model import predicted_spmv_speedup

from _harness import run_once


def test_section5d_spmv_cache_model(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: sec5d_spmv_model.run(experiment_config))
    record_report(report, "section5d_spmv_model")

    # The paper's closed form at the quoted points.
    assert abs(predicted_spmv_speedup(5) - 2.27) < 0.01
    assert abs(predicted_spmv_speedup(7) - 2.33) < 0.01

    rows = {row["matrix"]: row for row in report.rows}
    for name in ("BentPipe2D", "UniFlow2D", "Laplace2D"):
        row = rows[name]
        # fp32 reuses the right-hand side, fp64 does not (the profiler
        # observation), and the measured SpMV speedup lands near the model.
        assert row["x reuse fp32"] > row["x reuse fp64"]
        assert 2.0 < row["measured SpMV speedup"] < 2.8
        assert abs(row["cost model"] - row["measured SpMV speedup"]) < 0.5
        # Streaming cache simulation agrees with the reuse asymmetry.
        if "L2 sim hit fp32" in row:
            assert row["L2 sim hit fp32"] >= row["L2 sim hit fp64"]
