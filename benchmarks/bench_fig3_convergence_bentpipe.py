"""Benchmark regenerating Figure 3: convergence of fp32/fp64/GMRES-IR on BentPipe2D."""

from repro.experiments import fig3_convergence_bentpipe

from _harness import run_once


def test_figure3_convergence_curves_bentpipe(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: fig3_convergence_bentpipe.run(experiment_config))
    record_report(report, "figure3_convergence_bentpipe")

    rows = {row["solver"]: row for row in report.rows}
    # fp32 stagnates well above the 1e-10 tolerance; fp64 and IR converge;
    # IR's iteration count stays within one restart cycle of fp64's.
    assert rows["GMRES fp32"]["status"] != "converged"
    assert rows["GMRES fp32"]["final relative residual"] > 1e-8
    assert rows["GMRES fp64"]["status"] == "converged"
    assert rows["GMRES-IR"]["status"] == "converged"
    # "Convergence of the multiprecision solver follows the double precision
    # version closely": never much slower than fp64 (at most one extra cycle
    # beyond a 10% margin) and occasionally a little faster, as the paper
    # notes rounding can make it.
    m = report.parameters["restart"]
    fp64_iters = rows["GMRES fp64"]["iterations"]
    ir_iters = rows["GMRES-IR"]["iterations"]
    assert ir_iters <= fp64_iters + m
    assert abs(ir_iters - fp64_iters) <= 0.1 * fp64_iters + m
    assert rows["GMRES-IR"]["solve time [model s]"] < rows["GMRES fp64"]["solve time [model s]"]
