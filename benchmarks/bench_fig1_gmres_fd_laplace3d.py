"""Benchmark regenerating Figure 1: GMRES-FD switch sweep on Laplace3D vs GMRES-IR."""

from repro.experiments import fig1_fd_laplace3d

from _harness import run_once


def test_figure1_fd_switch_sweep_laplace3d(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: fig1_fd_laplace3d.run(experiment_config))
    record_report(report, "figure1_fd_laplace3d")

    # Shape of the figure: fp64-only is the slowest anchor; GMRES-IR matches
    # or beats the best hand-tuned FD switch point without any tuning.
    double_time = report.parameters["gmres-double time [model s]"]
    ir_time = report.parameters["gmres-ir time [model s]"]
    best_fd = report.parameters["best FD time [model s]"]
    assert ir_time < double_time
    assert ir_time <= 1.15 * best_fd
    # Switching far too late costs iterations (right side of the plot).
    times = report.row_values("solve time [model s]")
    iters = report.row_values("total iterations")
    assert iters[-1] >= iters[0]
