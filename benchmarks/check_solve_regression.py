"""Diff a fresh ``BENCH_solve.json`` against the committed baseline.

CI runs ``python benchmarks/_harness.py --solve --out <fresh>`` and then::

    python benchmarks/check_solve_regression.py \
        --fresh <fresh> --committed benchmarks/results/BENCH_solve.json

Three checks, from machine-independent to machine-dependent:

1. **Coverage** — the fresh run produced every (backend, matrix, mode) row
   the committed baseline has (a silently dropped configuration would make
   the perf trajectory lie by omission).
2. **Determinism** — iteration counts match the committed ones to within
   ``--max-iteration-drift`` (default 2).  The ``out=`` paths are
   bit-identical to the allocating paths *on one machine*, but BLAS
   dot/GEMV reductions differ in the last ulp across CPU
   microarchitectures, which can move a convergence check by an iteration;
   anything beyond that is a numerics regression, not noise.
3. **Wall time** — the fresh unmetered per-iteration wall time is within
   ``--tolerance``× of the committed number (both directions; default 4×).
   CI hardware differs from the machine that recorded the baseline, so the
   band is wide — it catches order-of-magnitude regressions (an accidental
   per-iteration allocation or a lost fast path), not percent-level drift.

It also re-asserts the committed acceptance gate: the committed summary
must show the unmetered speedup vs the pre-PR baseline at or above the
recorded ``gate.min_speedup`` for the gate configuration.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Tuple


def _rows(payload: dict) -> Dict[Tuple[str, str, str], dict]:
    return {
        (e["backend"], e["matrix"], e["mode"]): e
        for e in payload["entries"]
        if e.get("benchmark") == "solve"
    }


def check(
    fresh_path: pathlib.Path,
    committed_path: pathlib.Path,
    tolerance: float,
    max_iteration_drift: int = 2,
) -> int:
    fresh = json.loads(fresh_path.read_text())
    committed = json.loads(committed_path.read_text())
    fresh_rows = _rows(fresh)
    committed_rows = _rows(committed)
    failures = []

    missing = sorted(set(committed_rows) - set(fresh_rows))
    if missing:
        failures.append(f"fresh run is missing configurations: {missing}")

    for key in sorted(set(committed_rows) & set(fresh_rows)):
        base, new = committed_rows[key], fresh_rows[key]
        tag = "/".join(key)
        if abs(new["iterations"] - base["iterations"]) > max_iteration_drift:
            failures.append(
                f"{tag}: iteration count changed "
                f"{base['iterations']} -> {new['iterations']} "
                f"(beyond the +-{max_iteration_drift} cross-machine BLAS band: "
                "numerics regression)"
            )
        if key[2] != "unmetered":
            continue
        ratio = new["wall_per_iteration_us"] / base["wall_per_iteration_us"]
        line = (
            f"{tag}: {base['wall_per_iteration_us']:.1f} -> "
            f"{new['wall_per_iteration_us']:.1f} us/iter (x{ratio:.2f})"
        )
        if ratio > tolerance or ratio < 1.0 / tolerance:
            failures.append(f"{line} outside the {tolerance}x tolerance band")
        else:
            print(f"[solve-gate] OK {line}")

    gate = committed.get("summary", {}).get("gate", {})
    speedups = committed.get("summary", {}).get("unmetered_speedup_vs_pre_pr", {})
    if gate:
        key = f"{gate['backend']}/{gate['matrix']}"
        speedup = speedups.get(key, 0.0)
        if speedup < gate["min_speedup"]:
            failures.append(
                f"committed baseline no longer meets the acceptance gate: "
                f"{key} speedup {speedup:.2f} < {gate['min_speedup']}"
            )
        else:
            print(
                f"[solve-gate] committed gate holds: {key} "
                f"{speedup:.2f}x >= {gate['min_speedup']}x vs pre-PR"
            )

    if failures:
        for failure in failures:
            print(f"[solve-gate] FAIL {failure}", file=sys.stderr)
        return 1
    print("[solve-gate] all checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=pathlib.Path, required=True)
    parser.add_argument(
        "--committed",
        type=pathlib.Path,
        default=pathlib.Path(__file__).parent / "results" / "BENCH_solve.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=4.0,
        help="allowed wall-time ratio band vs the committed baseline (default 4x)",
    )
    parser.add_argument(
        "--max-iteration-drift",
        type=int,
        default=2,
        help="allowed iteration-count difference vs the committed baseline "
        "(absorbs last-ulp BLAS differences across CPUs; default 2)",
    )
    args = parser.parse_args(argv)
    return check(args.fresh, args.committed, args.tolerance, args.max_iteration_drift)


if __name__ == "__main__":
    sys.exit(main())
