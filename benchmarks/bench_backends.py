"""Backend-comparison benchmark: NumPy reference vs SciPy fast path.

Times the registered kernel backends head-to-head on the 64³ Laplace3D
matrix (the acceptance configuration) and writes the machine-readable
``BENCH_backends.json``.  The assertion encodes the perf guardrail: the
SciPy compiled CSR SpMV must stay at least 3× faster than the
``np.add.reduceat`` reference in fp64 — if a refactor ever drags the fast
path back toward the reference, this benchmark fails before the regression
lands.
"""

import json

from _harness import run_backend_comparison, run_once


def test_backend_comparison_spmv_speedup(benchmark):
    path = run_once(benchmark, lambda: run_backend_comparison(64))
    payload = json.loads(path.read_text())

    entries = payload["entries"]
    assert entries, "backend comparison produced no entries"
    backends = {e["backend"] for e in entries}
    assert {"numpy", "scipy"} <= backends

    # Acceptance gate: SciPy SpMV >= 3x the NumPy reference on Laplace3D64
    # in fp64 (measured ~6x on the CI-class hardware this was tuned on).
    speedup = payload["summary"]["spmv_speedup_scipy_over_numpy_double"]
    assert speedup >= 3.0, f"scipy SpMV speedup degraded to {speedup:.2f}x (< 3x)"

    # On the compiled path, batching pays: SpMM(k) must beat k sequential
    # SpMVs (the matrix streams through memory once).  The NumPy reference
    # makes no such promise — its batched kernel exists for semantics, not
    # speed — so the guardrail is scoped to scipy.
    n_rhs = payload["summary"]["n_rhs"]
    spmv = next(
        e["wall_seconds"]
        for e in entries
        if e["backend"] == "scipy" and e["kernel"] == "SpMV" and e["dtype"] == "double"
    )
    spmm = next(
        e["wall_seconds"]
        for e in entries
        if e["backend"] == "scipy" and e["kernel"] == "SpMM" and e["dtype"] == "double"
    )
    assert spmm < n_rhs * spmv
