"""Benchmark regenerating Figure 2: GMRES-FD switch sweep on UniFlow2D vs GMRES-IR."""

from repro.experiments import fig2_fd_uniflow2d

from _harness import run_once


def test_figure2_fd_switch_sweep_uniflow2d(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: fig2_fd_uniflow2d.run(experiment_config))
    record_report(report, "figure2_fd_uniflow2d")

    # Paper conclusion: GMRES-IR is the best method on UniFlow2D — faster
    # than fp64-only GMRES and at least as fast as every FD switch point.
    ir_time = report.parameters["gmres-ir time [model s]"]
    double_time = report.parameters["gmres-double time [model s]"]
    best_fd = report.parameters["best FD time [model s]"]
    assert ir_time < double_time
    assert ir_time <= 1.05 * best_fd
