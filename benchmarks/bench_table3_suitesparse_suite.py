"""Benchmark regenerating Table III: GMRES double vs GMRES-IR across the proxy suite."""

from repro.experiments import table3_suitesparse

from _harness import run_once


def test_table3_suitesparse_proxy_suite(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: table3_suitesparse.run(experiment_config))
    record_report(report, "table3_suitesparse_suite")

    rows = {row["matrix"]: row for row in report.rows}
    assert len(rows) == 14  # 10 proxies + 4 Galeri problems

    # Everything converges except where the paper also reports difficulty.
    for name, row in rows.items():
        assert row["double status"] == "conv", name
        assert row["IR status"] == "conv", name

    # The paper's aggregate conclusion: GMRES-IR tends to give speedup on
    # problems needing many hundreds/thousands of iterations ...
    hard = [r for r in rows.values() if r["double iters"] >= 400]
    assert hard and all(r["speedup"] > 1.05 for r in hard)
    # ... and little or none on problems that converge in very few iterations.
    easy = [r for r in rows.values() if r["double iters"] <= 100]
    assert easy and min(r["speedup"] for r in easy) < 1.25

    # Galeri reference rows keep their ordering from the earlier sections:
    # the preconditioned Stretched2D run has the largest speedup of the four.
    galeri = {k: v for k, v in rows.items() if k.endswith("1500") or k.startswith("Laplace3D")}
    assert galeri["Stretched2D1500"]["speedup"] >= max(
        v["speedup"] for k, v in galeri.items() if k != "Stretched2D1500"
    ) - 0.15
