"""Benchmark regenerating Figure 5: kernel speedups across three PDE problems."""

from repro.experiments import fig5_kernel_speedups

from _harness import run_once


def test_figure5_kernel_speedups_three_pdes(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: fig5_kernel_speedups.run(experiment_config))
    record_report(report, "figure5_kernel_speedups")

    spmv_speedups = [r["speedup"] for r in report.rows if r["kernel"] == "SpMV"]
    total_speedups = [r["speedup"] for r in report.rows if r["kernel"] == "Total Time"]
    # Paper: SpMV improves by 2.4-2.6x on all three matrices and total solve
    # times improve by 24-36%; we accept the same ordering with wider bands.
    assert len(spmv_speedups) == 3
    assert all(s > 2.0 for s in spmv_speedups)
    assert all(t > 1.1 for t in total_speedups)
    # Kernel speedups are consistent across problems (max/min within ~25%).
    assert max(spmv_speedups) / min(spmv_speedups) < 1.3
