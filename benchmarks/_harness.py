"""Helpers shared by the benchmark modules (kept out of conftest so the
benchmark files can import them explicitly)."""

from __future__ import annotations


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The benchmarks reproduce whole experiments (dozens of solver runs), so a
    single timed round is appropriate — the interesting numbers are in the
    experiment reports, the wall time is just bookkeeping.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
