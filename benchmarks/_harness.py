"""Helpers shared by the benchmark modules (kept out of conftest so the
benchmark files can import them explicitly).

Besides the pytest-benchmark glue (:func:`run_once`) this module provides
the machine-readable benchmark output used by CI:

* :func:`write_bench_json` writes a ``BENCH_<name>.json`` file with one
  entry per (kernel, precision) bucket — wall seconds, modelled seconds,
  call counts — tagged with backend, matrix and dtype, so perf trajectories
  can be diffed across commits;
* ``python benchmarks/_harness.py --smoke`` runs scaled-down Figure 1 and
  Figure 5 configurations (< 2 minutes) and emits ``BENCH_smoke.json``
  (the CI smoke-benchmark job uploads it as an artifact);
* ``python benchmarks/_harness.py --backends`` times the registered kernel
  backends against each other on the 64³ Laplace3D SpMV/SpMM and emits
  ``BENCH_backends.json`` including the measured speedups;
* ``python benchmarks/_harness.py --solve`` times the *end-to-end* metered
  and unmetered GMRES(50) fp64 solve on the smoke matrices for every
  registered backend and emits ``BENCH_solve.json`` — the solver-level perf
  trajectory.  The summary block records the pre-PR per-iteration baseline
  (measured before the allocation-free hot path landed) and the speedup
  against it; ``benchmarks/check_solve_regression.py`` diffs a fresh run
  against the committed file in CI;
* ``python benchmarks/_harness.py --solve-block`` times Block-GMRES at
  block size 8 against 8 sequential GMRES solves (both backends, plain and
  polynomial-preconditioned) and emits ``BENCH_block.json``; it *enforces*
  the batched-solve acceptance gate (``BLOCK_GATE``: ≥2× per-RHS speedup
  on the reference backend in the preconditioned configuration) and fails
  the run when the gate or the sequential-parity check is violated;
* ``python benchmarks/_harness.py --serve`` drives N concurrent client
  threads against a :class:`repro.serve.OperatorSession` (batched
  micro-batching scheduler vs the unbatched width-1 scheduler, both
  backends) and emits ``BENCH_serve.json`` with RHS/s and p50/p95
  queue-wait/solve/total latency; it *enforces* the serving acceptance
  gate (``SERVE_GATE``: ≥2× RHS/s from batching on the reference backend)
  plus the bit-parity (served == direct solve) and divergence-isolation
  checks.
* ``python benchmarks/_harness.py --farm`` replays a skewed 8-operator
  traffic mix (one hot tenant, seven cold ones) against a
  :class:`repro.serve.SolverFarm` whose session budget is smaller than the
  operator count — so LRU eviction and re-warm churn are part of the
  measured workload — and against the naive no-farm alternative (one warm
  session at a time, rebuilt on every operator switch, requests solved
  sequentially).  Emits ``BENCH_farm.json`` with fleet RHS/s, per-tenant
  p50/p95 latency and fairness shares, and eviction counts; *enforces*
  the farm acceptance gate (``FARM_GATE``: ≥1.5× fleet RHS/s over the
  naive baseline on the reference backend, no cold tenant's p95 latency
  degraded more than 3× by the hot neighbour, evictions observed).
* ``python benchmarks/_harness.py --obs`` measures the observability
  layer's serving cost: the ``--serve`` batched client mix is replayed
  with obs fully off (baseline), metrics-only (the default), adaptive
  sampling (10% head + tail keep) and with full request tracing +
  solver probes on, interleaved so drift cancels.
  Emits ``BENCH_obs.json`` with the measured throughput cost of each
  state plus the traced run's Chrome trace-event artifact
  (``TRACE_obs.json``, opens in chrome://tracing / Perfetto); *enforces*
  the overhead gate (``OBS_GATE``: tracing off costs <2% RHS/s, sampled
  tracing <2%, full tracing <10%, on the reference backend) and checks
  that the span ledger reconciles with the service telemetry.

The backend-selection/setup boilerplate those modes share lives in
:func:`backend_context` / :func:`each_backend`.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


# ---------------------------------------------------------------------- #
# backend selection/setup (shared by every CLI mode and bench module)    #
# ---------------------------------------------------------------------- #
@contextmanager
def backend_context(backend: Optional[str] = None, *, meter: bool = False) -> Iterator[str]:
    """Install a pinned execution context for one benchmark measurement.

    The boilerplate every solver-level benchmark used to repeat inline:
    build an :class:`ExecutionContext` pinned to ``backend`` with metering
    on or off, install it globally, and — crucially — restore the default
    context afterwards even when the measurement raises.  Yields the
    resolved backend name.
    """
    from repro.config import get_config
    from repro.linalg.context import ExecutionContext, set_context

    name = backend or get_config().backend
    set_context(ExecutionContext(meter=meter, backend=name))
    try:
        yield name
    finally:
        set_context(ExecutionContext())


def each_backend(*, meter: bool = False) -> Iterator[str]:
    """Iterate every registered backend with a pinned context installed.

    ``for backend in each_backend(): ...`` replaces the
    ``available_backends()`` loop + ``set_context`` + ``try/finally`` reset
    dance that was duplicated across the solve/block/serve modes.
    """
    from repro.backends import available_backends

    for name in available_backends():
        with backend_context(name, meter=meter):
            yield name


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The benchmarks reproduce whole experiments (dozens of solver runs), so a
    single timed round is appropriate — the interesting numbers are in the
    experiment reports, the wall time is just bookkeeping.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


# ---------------------------------------------------------------------- #
# machine-readable benchmark records                                     #
# ---------------------------------------------------------------------- #
def timer_entries(
    timer,
    *,
    benchmark: str,
    backend: str,
    matrix: str = "",
    extra: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Flatten a :class:`repro.perfmodel.timer.KernelTimer` into JSON rows.

    One row per (kernel label, precision) bucket, tagged with the backend
    and matrix so rows from different configurations can live in one file.
    """
    rows: List[Dict[str, object]] = []
    for rec in timer.records:
        row: Dict[str, object] = {
            "benchmark": benchmark,
            "backend": backend,
            "matrix": matrix,
            "kernel": rec.label,
            "dtype": rec.precision,
            "calls": rec.calls,
            "wall_seconds": rec.wall_seconds,
            "model_seconds": rec.model_seconds,
            "bytes": rec.bytes,
            "flops": rec.flops,
        }
        if extra:
            row.update(extra)
        rows.append(row)
    return rows


def write_bench_json(
    name: str,
    entries: List[Dict[str, object]],
    *,
    summary: Optional[Dict[str, object]] = None,
    out: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results/``.

    Returns the path written.  The payload is self-describing: a schema
    tag, environment stamps, an optional summary block and the per-kernel
    ``entries``.
    """
    import numpy
    import scipy

    path = out or (RESULTS_DIR / f"BENCH_{name}.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, object] = {
        "schema": "repro-bench/1",
        "name": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "entries": entries,
    }
    if summary:
        payload["summary"] = summary
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------- #
# CLI modes (used by CI)                                                 #
# ---------------------------------------------------------------------- #
def _smoke_entries() -> List[Dict[str, object]]:
    """Scaled-down Figure 1 + Figure 5 runs with per-kernel wall times."""
    from repro.config import get_config
    from repro.experiments import ExperimentConfig, fig1_fd_laplace3d, fig5_kernel_speedups
    from repro.perfmodel import KernelTimer, use_timer

    cfg = ExperimentConfig(quick=True)
    backend = get_config().backend
    entries: List[Dict[str, object]] = []
    for label, driver, matrix in (
        ("figure1_fd_laplace3d", fig1_fd_laplace3d.run, "Laplace3D16"),
        ("figure5_kernel_speedups", fig5_kernel_speedups.run, "three-PDE suite"),
    ):
        with use_timer(KernelTimer(label)) as timer:
            start = time.perf_counter()
            driver(cfg)
            elapsed = time.perf_counter() - start
        entries.extend(
            timer_entries(
                timer,
                benchmark=label,
                backend=backend,
                matrix=matrix,
                extra={"total_wall_seconds": elapsed},
            )
        )
        print(f"[smoke] {label}: {elapsed:.1f} s wall", flush=True)
    return entries


def run_smoke(out: Optional[pathlib.Path] = None) -> pathlib.Path:
    """CI smoke benchmark: quick fig1/fig5 configs → BENCH_smoke.json."""
    path = write_bench_json("smoke", _smoke_entries(), out=out)
    print(f"[smoke] wrote {path}")
    return path


def _time_kernel(func, *, repeats: int = 7) -> float:
    """Best-of-``repeats`` wall time of ``func`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_backend_comparison(
    grid: int = 64,
    *,
    n_rhs: int = 8,
    out: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Time every registered backend on Laplace3D SpMV/SpMM → BENCH_backends.json.

    The reference configuration of the acceptance gate is the 64³ Laplace3D
    matrix in fp64; the summary block records the SciPy-over-NumPy SpMV
    speedup for that configuration.
    """
    from repro.backends import available_backends, get_backend
    from repro.config import rng
    from repro.matrices import laplace3d

    matrix64 = laplace3d(grid)
    entries: List[Dict[str, object]] = []
    spmv_times: Dict[str, Dict[str, float]] = {}
    gen = rng()  # deterministic inputs (ReproConfig.seed)
    for dtype_name in ("double", "single"):
        matrix = matrix64.astype(dtype_name)
        x = gen.standard_normal(matrix.n_cols).astype(matrix.dtype)
        X = gen.standard_normal((matrix.n_cols, n_rhs)).astype(matrix.dtype)
        for name in available_backends():
            backend = get_backend(name)
            backend.spmv(matrix, x)  # warm-up pass also builds cached handles
            t_spmv = _time_kernel(lambda: backend.spmv(matrix, x))
            t_spmm = _time_kernel(lambda: backend.spmm(matrix, X))
            spmv_times.setdefault(dtype_name, {})[name] = t_spmv
            for kernel, seconds in (("SpMV", t_spmv), ("SpMM", t_spmm)):
                entries.append(
                    {
                        "benchmark": "backend_comparison",
                        "backend": name,
                        "matrix": matrix.name,
                        "kernel": kernel,
                        "dtype": dtype_name,
                        "calls": 1,
                        "wall_seconds": seconds,
                        "n_rows": matrix.n_rows,
                        "nnz": matrix.nnz,
                        "n_rhs": n_rhs if kernel == "SpMM" else 1,
                    }
                )
            print(
                f"[backends] {matrix.name} {dtype_name} {name}: "
                f"SpMV {t_spmv * 1e3:.2f} ms, SpMM({n_rhs}) {t_spmm * 1e3:.2f} ms",
                flush=True,
            )
    summary: Dict[str, object] = {"grid": grid, "n_rhs": n_rhs}
    for dtype_name, times in spmv_times.items():
        if "numpy" in times and "scipy" in times and times["scipy"] > 0:
            summary[f"spmv_speedup_scipy_over_numpy_{dtype_name}"] = (
                times["numpy"] / times["scipy"]
            )
    path = write_bench_json("backends", entries, summary=summary, out=out)
    print(f"[backends] wrote {path}")
    return path


#: Per-iteration wall time (µs) of the unmetered smoke GMRES(50) fp64 solve
#: measured at commit 88ece0e (the last commit *before* the allocation-free
#: hot path landed) on the machine that recorded the committed
#: ``BENCH_solve.json``; best of 21 runs interleaved with the post-change
#: measurements to cancel machine drift.  Keyed ``"<backend>/<matrix>"``.
#: These numbers are only comparable to measurements from that same
#: committed file — the CI regression check compares fresh runs against the
#: committed wall times with a tolerance band instead.
PRE_PR_BASELINE_US: Dict[str, float] = {
    "numpy/Laplace3D24": 1216.7,
    "numpy/UniFlow2D64": 285.8,
    "scipy/Laplace3D24": 652.6,
    "scipy/UniFlow2D64": 179.6,
}

#: The acceptance-gate configuration: the library-default NumPy reference
#: backend on the larger smoke matrix must beat the pre-PR baseline by this
#: factor (checked against the committed JSON by check_solve_regression.py).
SOLVE_GATE = {"backend": "numpy", "matrix": "Laplace3D24", "min_speedup": 1.25}


def run_solve(out: Optional[pathlib.Path] = None, *, repeats: int = 3) -> pathlib.Path:
    """End-to-end GMRES(50) solve benchmark → BENCH_solve.json.

    For every registered backend and smoke matrix, runs the fp64 GMRES(50)
    solve twice over: *unmetered* (``meter=False`` — the metering fast path,
    raw backend speed) and *metered* (timers active, cost model charged).
    Records best-of-``repeats`` wall seconds and wall µs/iteration.
    Iteration counts are deterministic (bit-identical numerics across the
    out= refactor), so the CI diff can require them to match exactly.
    """
    import numpy as np

    from repro.backends import available_backends
    from repro.matrices import laplace3d, uniflow2d
    from repro.solvers.gmres import gmres

    solve_kwargs = dict(restart=50, tol=1e-8, max_restarts=4, fp64_check=False)
    matrices = [("Laplace3D24", laplace3d(24)), ("UniFlow2D64", uniflow2d(64))]
    entries: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}
    for backend in available_backends():
        for label, matrix in matrices:
            b = np.ones(matrix.n_rows)
            for mode in ("unmetered", "metered"):
                with backend_context(backend, meter=(mode == "metered")):
                    result = gmres(matrix, b, **solve_kwargs)  # warm-up
                    best = float("inf")
                    for _ in range(repeats):
                        start = time.perf_counter()
                        result = gmres(matrix, b, **solve_kwargs)
                        best = min(best, time.perf_counter() - start)
                per_iter_us = best / result.iterations * 1e6
                entries.append(
                    {
                        "benchmark": "solve",
                        "backend": backend,
                        "matrix": label,
                        "solver": "gmres(50)",
                        "dtype": "double",
                        "mode": mode,
                        "status": str(result.status),
                        "iterations": result.iterations,
                        "wall_seconds": best,
                        "wall_per_iteration_us": per_iter_us,
                    }
                )
                if mode == "unmetered":
                    key = f"{backend}/{label}"
                    baseline = PRE_PR_BASELINE_US.get(key)
                    if baseline:
                        speedups[key] = baseline / per_iter_us
                print(
                    f"[solve] {backend} {label} {mode}: "
                    f"{result.iterations} iters, {per_iter_us:.1f} us/iter",
                    flush=True,
                )
    summary: Dict[str, object] = {
        "solver": "gmres(50)",
        "dtype": "double",
        "tolerance": solve_kwargs["tol"],
        "repeats": repeats,
        "gate": SOLVE_GATE,
        "pre_pr_baseline_us": dict(PRE_PR_BASELINE_US),
        "unmetered_speedup_vs_pre_pr": speedups,
    }
    path = write_bench_json("solve", entries, summary=summary, out=out)
    print(f"[solve] wrote {path}")
    return path


#: The batched-solve acceptance gate: on the reference backend, Block-GMRES
#: at block size 8 must beat 8 sequential GMRES solves by this factor in
#: per-RHS wall time, in the paper's polynomial-preconditioned solver
#: configuration (where iterations are SpMM-dominated — see the README's
#: "Batched multi-RHS solving" subsection for when blocking wins).
BLOCK_GATE = {
    "backend": "numpy",
    "matrix": "Laplace3D32",
    "config": "poly16",
    "block_size": 8,
    "min_speedup": 2.0,
}

#: (label, polynomial degree or None, sequential restart, block restart)
_BLOCK_CONFIGS = [
    ("poly16", 16, 50, 15),
    ("plain", None, 50, 16),
]


def run_solve_block(
    out: Optional[pathlib.Path] = None,
    *,
    repeats: int = 3,
    grid: int = 32,
    block_size: int = 8,
    tol: float = 1e-8,
) -> pathlib.Path:
    """Batched multi-RHS solve benchmark → BENCH_block.json (with gate).

    For every backend and solver configuration, times ``block_size``
    sequential fp64 GMRES solves against one Block-GMRES solve of the same
    right-hand sides (both unmetered, best-of-``repeats``), verifies the
    block solutions match the sequential ones to solver tolerance, and
    records the per-RHS speedup.  Exits nonzero if the acceptance gate
    configuration (:data:`BLOCK_GATE`) falls below its threshold.
    """
    import numpy as np

    from repro.config import rng
    from repro.matrices import laplace3d
    from repro.preconditioners.polynomial import GmresPolynomialPreconditioner
    from repro.solvers import block_gmres, gmres

    matrix = laplace3d(grid)
    label = f"Laplace3D{grid}"
    B = rng(2024).standard_normal((matrix.n_rows, block_size))
    entries: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}
    parity: Dict[str, float] = {}
    for backend in each_backend():
        for config, degree, seq_restart, blk_restart in _BLOCK_CONFIGS:
            precond = (
                GmresPolynomialPreconditioner(matrix, degree=degree)
                if degree is not None
                else None
            )
            seq_kwargs = dict(
                restart=seq_restart,
                tol=tol,
                max_restarts=10,
                preconditioner=precond,
                fp64_check=True,
            )
            blk_kwargs = dict(
                restart=blk_restart,
                tol=tol,
                max_restarts=60,
                preconditioner=precond,
                fp64_check=True,
            )

            def run_sequential():
                return [gmres(matrix, B[:, c], **seq_kwargs) for c in range(block_size)]

            def run_block():
                return block_gmres(matrix, B, **blk_kwargs)

            # Interleave the sequential and block measurements so machine
            # drift (thermal, noisy neighbours) cancels out of the ratio,
            # as the committed --solve baselines were recorded.  Only the
            # gate configuration earns the full repeat count.
            n_reps = repeats if config == BLOCK_GATE["config"] else 1
            seq_results = run_sequential()  # warm-up (plans, BLAS, caches)
            blk = run_block()  # warm-up
            t_seq = float("inf")
            t_blk = float("inf")
            for _ in range(n_reps):
                start = time.perf_counter()
                seq_results = run_sequential()
                t_seq = min(t_seq, time.perf_counter() - start)
                start = time.perf_counter()
                blk = run_block()
                t_blk = min(t_blk, time.perf_counter() - start)

            # Correctness: every column converged on both paths and the
            # block solutions match the sequential ones to solver
            # tolerance (the residual criterion both paths satisfy).
            assert all(r.converged for r in seq_results), (
                f"sequential {backend}/{config} did not converge"
            )
            assert blk.converged, f"block {backend}/{config} did not converge"
            assert float(blk.relative_residuals_fp64.max()) <= tol * 1.01, (
                f"block {backend}/{config} residual above tolerance"
            )
            max_diff = max(
                float(
                    np.linalg.norm(blk.X[:, c] - seq_results[c].x)
                    / np.linalg.norm(seq_results[c].x)
                )
                for c in range(block_size)
            )
            assert max_diff < 1e-5, (
                f"block {backend}/{config} drifted from sequential: {max_diff:.2e}"
            )

            key = f"{backend}/{config}"
            speedups[key] = t_seq / t_blk
            parity[key] = max_diff
            common = {
                "benchmark": "solve_block",
                "backend": backend,
                "matrix": label,
                "config": config,
                "dtype": "double",
                "block_size": block_size,
                "tolerance": tol,
            }
            entries.append(
                dict(
                    common,
                    mode="sequential",
                    solver=f"gmres({seq_restart})",
                    wall_seconds=t_seq,
                    per_rhs_wall_seconds=t_seq / block_size,
                    iterations=sum(r.iterations for r in seq_results),
                )
            )
            entries.append(
                dict(
                    common,
                    mode="block",
                    solver=f"block-gmres({blk_restart}x{block_size})",
                    wall_seconds=t_blk,
                    per_rhs_wall_seconds=t_blk / block_size,
                    iterations=int(blk.iterations.max()),
                    block_iterations=blk.block_iterations,
                    max_solution_diff_vs_sequential=max_diff,
                )
            )
            print(
                f"[block] {backend}/{config}: sequential {t_seq * 1e3:.0f} ms, "
                f"block {t_blk * 1e3:.0f} ms -> {t_seq / t_blk:.2f}x per RHS "
                f"(max drift {max_diff:.1e})",
                flush=True,
            )

    summary: Dict[str, object] = {
        "grid": grid,
        "block_size": block_size,
        "tolerance": tol,
        "repeats": repeats,
        "gate": dict(BLOCK_GATE),
        "per_rhs_speedup_block_over_sequential": speedups,
        "max_solution_diff_vs_sequential": parity,
    }
    path = write_bench_json("block", entries, summary=summary, out=out)
    print(f"[block] wrote {path}")

    gate_key = f"{BLOCK_GATE['backend']}/{BLOCK_GATE['config']}"
    gate_speedup = speedups.get(gate_key, 0.0)
    if gate_speedup < BLOCK_GATE["min_speedup"]:
        print(
            f"[block] FAIL gate: {gate_key} per-RHS speedup "
            f"{gate_speedup:.2f}x < {BLOCK_GATE['min_speedup']}x",
            file=sys.stderr,
        )
        raise SystemExit(1)
    print(
        f"[block] gate holds: {gate_key} {gate_speedup:.2f}x >= "
        f"{BLOCK_GATE['min_speedup']}x per RHS"
    )
    return path


#: The serving acceptance gate: with >= 8 concurrent clients on the paper's
#: polynomial-preconditioned Laplace3D32 configuration, the batched
#: micro-batching scheduler must serve at least this many times the RHS/s
#: of the unbatched (block width 1) scheduler on the reference backend.
SERVE_GATE = {
    "backend": "numpy",
    "matrix": "Laplace3D32",
    "config": "poly16",
    "clients": 8,
    "min_speedup": 2.0,
}

#: (mode label, OperatorSession kwargs).  The unbatched scheduler serves
#: width-1 solves with the single-RHS-tuned restart; the batched scheduler
#: coalesces up to 8 requests with the block-tuned restart — the same two
#: solver configurations BLOCK_GATE compares, now measured *as a service*.
_SERVE_MODES = [
    (
        "unbatched",
        dict(max_block=1, max_wait_ms=0.0, restart=50, max_restarts=10,
             policy="sequential"),
    ),
    (
        "batched",
        dict(max_block=8, max_wait_ms=25.0, restart=15, max_restarts=60,
             policy="block"),
    ),
]


def run_serve(
    out: Optional[pathlib.Path] = None,
    *,
    grid: int = 32,
    clients: int = 8,
    requests_per_client: int = 3,
    tol: float = 1e-8,
    repeats: int = 2,
) -> pathlib.Path:
    """Solver-service throughput benchmark → BENCH_serve.json (with gate).

    Drives ``clients`` concurrent client threads against one
    :class:`repro.serve.OperatorSession` (each client submits one
    right-hand side at a time and waits for its future — the serving
    workload shape), once with the unbatched width-1 scheduler and once
    with micro-batching enabled, for every registered backend.  Records
    RHS/s and p50/p95 queue-wait/solve/total latency from the service
    telemetry, checks the served results, and enforces :data:`SERVE_GATE`.

    Also asserts the two serving acceptance properties end to end: a
    request served through the unbatched scheduler is *bit-identical* to
    the session's direct ``solve()``, and a batch containing one
    non-finite (diverging) right-hand side still completes its other
    requests.
    """
    import threading

    import numpy as np

    from repro.config import rng
    from repro.matrices import laplace3d
    from repro.preconditioners.polynomial import GmresPolynomialPreconditioner
    from repro.serve import OperatorSession

    matrix = laplace3d(grid)
    label = f"Laplace3D{grid}"
    precond = GmresPolynomialPreconditioner(matrix, degree=16)
    total = clients * requests_per_client
    B = rng(2026).standard_normal((matrix.n_rows, total))
    entries: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}

    for backend in each_backend():

        def drive_clients(session, mode):
            """Run the client fleet once; returns the wall seconds."""
            errors: List[BaseException] = []

            def client(c):
                try:
                    for j in range(requests_per_client):
                        idx = c * requests_per_client + j
                        result = session.submit(B[:, idx]).result(timeout=600)
                        assert result.converged, (
                            f"request {idx} ended {result.status}"
                        )
                        assert result.relative_residual_fp64 <= tol * 1.01
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(c,), name=f"client-{c}")
                for c in range(clients)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - start
            if errors:
                raise SystemExit(
                    f"[serve] {backend}/{mode}: client errors: {errors[:3]}"
                )
            return wall

        # Interleave the unbatched and batched measurements across repeats
        # so machine drift cancels out of the throughput ratio (the same
        # discipline the --solve-block gate uses); keep each mode's best.
        best: Dict[str, tuple] = {}
        for _ in range(max(1, repeats)):
            for mode, session_kwargs in _SERVE_MODES:
                session = OperatorSession(
                    matrix, preconditioner=precond, tol=tol, **session_kwargs
                )
                try:
                    # Warm both dispatch widths through the telemetry-free
                    # direct path so the timed window measures steady state.
                    session.solve(B[:, 0])
                    if session.max_block > 1:
                        session.solve_many(B[:, : session.max_block])
                    wall = drive_clients(session, mode)
                    stats = session.stats()

                    # Bit-parity acceptance: unbatched served == direct.
                    if mode == "unbatched":
                        served = session.submit(B[:, 0]).result(timeout=600)
                        direct = session.solve(B[:, 0])
                        assert np.array_equal(served.x, direct.x), (
                            f"[serve] {backend}: served result drifted from "
                            "the direct solve path"
                        )
                    # Divergence isolation: a NaN request fails alone while
                    # the good requests sharing the window complete.
                    if mode == "batched":
                        good = [session.submit(B[:, c]) for c in range(3)]
                        bad = session.submit(np.full(matrix.n_rows, np.nan))
                        assert all(g.result(timeout=600).converged for g in good)
                        try:
                            bad.result(timeout=600)
                            raise SystemExit(
                                f"[serve] {backend}: non-finite request "
                                "did not fail"
                            )
                        except ValueError:
                            pass
                finally:
                    session.close()
                assert stats.requests_completed >= total
                if mode not in best or wall < best[mode][0]:
                    best[mode] = (wall, stats)

        throughput: Dict[str, float] = {}
        for mode, session_kwargs in _SERVE_MODES:
            wall, stats = best[mode]
            rps = total / wall
            throughput[mode] = rps
            entries.append(
                {
                    "benchmark": "serve",
                    "backend": backend,
                    "matrix": label,
                    "config": "poly16",
                    "dtype": "double",
                    "mode": mode,
                    "clients": clients,
                    "requests": total,
                    "tolerance": tol,
                    "max_block": session_kwargs["max_block"],
                    "max_wait_ms": session_kwargs["max_wait_ms"],
                    "restart": session_kwargs["restart"],
                    "wall_seconds": wall,
                    "rhs_per_second": rps,
                    "queue_wait_p50_ms": stats.queue_wait.p50_ms,
                    "queue_wait_p95_ms": stats.queue_wait.p95_ms,
                    "solve_p50_ms": stats.solve.p50_ms,
                    "solve_p95_ms": stats.solve.p95_ms,
                    "latency_p50_ms": stats.latency.p50_ms,
                    "latency_p95_ms": stats.latency.p95_ms,
                    "mean_batch_occupancy": stats.mean_batch_occupancy,
                    "batch_occupancy": {
                        str(k): v for k, v in sorted(stats.batch_occupancy.items())
                    },
                    "block_iterations": stats.block_iterations,
                }
            )
            print(
                f"[serve] {backend}/{mode}: {total} requests from {clients} "
                f"clients in {wall:.2f} s -> {rps:.1f} RHS/s "
                f"(latency p50 {stats.latency.p50_ms:.0f} ms / "
                f"p95 {stats.latency.p95_ms:.0f} ms, mean occupancy "
                f"{stats.mean_batch_occupancy:.1f})",
                flush=True,
            )
        speedups[backend] = throughput["batched"] / throughput["unbatched"]
        print(
            f"[serve] {backend}: batched/unbatched throughput "
            f"{speedups[backend]:.2f}x",
            flush=True,
        )

    summary: Dict[str, object] = {
        "grid": grid,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "tolerance": tol,
        "gate": dict(SERVE_GATE),
        "throughput_speedup_batched_over_unbatched": speedups,
    }
    path = write_bench_json("serve", entries, summary=summary, out=out)
    print(f"[serve] wrote {path}")

    gate_speedup = speedups.get(SERVE_GATE["backend"], 0.0)
    if gate_speedup < SERVE_GATE["min_speedup"]:
        print(
            f"[serve] FAIL gate: {SERVE_GATE['backend']} batched serving "
            f"{gate_speedup:.2f}x < {SERVE_GATE['min_speedup']}x RHS/s",
            file=sys.stderr,
        )
        raise SystemExit(1)
    print(
        f"[serve] gate holds: {SERVE_GATE['backend']} batched serving "
        f"{gate_speedup:.2f}x >= {SERVE_GATE['min_speedup']}x RHS/s"
    )
    return path


#: The observability overhead gate, checked on the reference backend
#: against the same workload shape as the ``--serve`` batched mode:
#: with tracing *disabled* (the default: metrics collectors only) the
#: serving throughput must stay within ``max_untraced_cost`` of the
#: obs-free baseline, and with tracing *enabled* within
#: ``max_traced_cost`` — observability must be cheap when off and
#: affordable when on.
OBS_GATE = {
    "backend": "numpy",
    "matrix": "Laplace3D32",
    "max_untraced_cost": 0.02,
    "max_sampled_cost": 0.02,
    "max_traced_cost": 0.10,
}

#: The instrumentation states the overhead benchmark interleaves.
_OBS_VARIANTS = ("baseline", "untraced", "sampled", "traced")


def run_obs(
    out: Optional[pathlib.Path] = None,
    *,
    grid: int = 32,
    clients: int = 8,
    requests_per_client: int = 3,
    tol: float = 1e-8,
    repeats: int = 6,
    trace_out: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Observability overhead benchmark → BENCH_obs.json (with gate).

    Replays the ``--serve`` batched client mix (``clients`` threads, one
    in-flight request each) against three identically configured sessions
    that differ only in instrumentation:

    * ``baseline`` — :meth:`repro.obs.Observability.disabled`: no tracer,
      no metrics registry (the PR-8 state);
    * ``untraced`` — metrics collectors registered, tracing off (the
      library default);
    * ``sampled`` — adaptive tracing (:class:`repro.obs.Sampler`, 10%
      head rate + tail keep): the always-on production configuration;
    * ``traced`` — a live :class:`repro.obs.Tracer` spanning every
      request plus solver probes, with metrics on.

    The variants are interleaved across ``repeats`` and each keeps its
    best wall time, so machine drift cancels out of the overhead ratios.
    The traced run's span ledger must reconcile with the service
    telemetry (one ``request`` root per submitted request,
    ``submitted == completed + failed``); its Chrome trace-event export
    is written next to the JSON (``TRACE_obs.json``) and the gate
    (:data:`OBS_GATE`) bounds both overhead ratios on the reference
    backend.
    """
    import threading

    import numpy as np

    from repro.config import rng
    from repro.matrices import laplace3d
    from repro.obs import (
        MetricsRegistry,
        Observability,
        Sampler,
        Tracer,
        export_chrome_trace,
        prometheus_text,
    )
    from repro.preconditioners.polynomial import GmresPolynomialPreconditioner
    from repro.serve import OperatorSession

    matrix = laplace3d(grid)
    label = f"Laplace3D{grid}"
    precond = GmresPolynomialPreconditioner(matrix, degree=16)
    total = clients * requests_per_client
    B = rng(2026).standard_normal((matrix.n_rows, total))
    session_kwargs = dict(_SERVE_MODES[1][1])  # the batched serving config
    entries: List[Dict[str, object]] = []
    costs: Dict[str, Dict[str, float]] = {}
    trace_path = trace_out or (RESULTS_DIR / "TRACE_obs.json")

    def make_obs(variant: str) -> "Observability":
        if variant == "baseline":
            return Observability.disabled()
        if variant == "untraced":
            return Observability(tracer=None, registry=MetricsRegistry())
        if variant == "sampled":
            return Observability(
                tracer=Tracer(sampler=Sampler(head_rate=0.1, tail_keep=True)),
                registry=MetricsRegistry(),
            )
        return Observability(
            tracer=Tracer(), registry=MetricsRegistry()
        )

    for backend in each_backend():

        def drive_clients(session):
            errors: List[BaseException] = []

            def client(c):
                try:
                    for j in range(requests_per_client):
                        idx = c * requests_per_client + j
                        result = session.submit(B[:, idx]).result(timeout=600)
                        assert result.converged, (
                            f"request {idx} ended {result.status}"
                        )
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(c,), name=f"client-{c}")
                for c in range(clients)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - start
            if errors:
                raise SystemExit(f"[obs] {backend}: client errors: {errors[:3]}")
            return wall

        best: Dict[str, tuple] = {}
        for _ in range(max(1, repeats)):
            for variant in _OBS_VARIANTS:
                obs = make_obs(variant)
                session = OperatorSession(
                    matrix, preconditioner=precond, tol=tol, obs=obs,
                    **session_kwargs,
                )
                try:
                    session.solve(B[:, 0])
                    session.solve_many(B[:, : session.max_block])
                    wall = drive_clients(session)
                    stats = session.stats()
                    # Scrape before close: a closed session's collector
                    # retires itself and drops its series.
                    scrape = (
                        prometheus_text(obs.registry)
                        if obs.registry is not None
                        else ""
                    )
                finally:
                    session.close()
                assert stats.requests_completed >= total
                if variant == "traced":
                    # Span ledger reconciles with the service telemetry.
                    tracer = obs.tracer
                    assert tracer.open_spans == 0, "span leak under load"
                    roots = [
                        s for s in tracer.finished_spans()
                        if s.name == "request"
                    ]
                    dropped = tracer.dropped_spans
                    if dropped == 0 and len(roots) != stats.requests_submitted:
                        raise SystemExit(
                            f"[obs] {backend}: {len(roots)} request spans != "
                            f"{stats.requests_submitted} submitted requests"
                        )
                    if stats.requests_submitted != (
                        stats.requests_completed + stats.requests_failed
                    ):
                        raise SystemExit(f"[obs] {backend}: telemetry skew")
                if variant == "sampled":
                    # Sampled ledger reconciles: every request either left
                    # a kept root or was counted sampled-out — and with an
                    # all-converged workload the kept set is the head
                    # stride plus the tail's slowest-decile keeps.
                    tracer = obs.tracer
                    assert tracer.open_spans == 0, "span leak under sampling"
                    roots = [
                        s for s in tracer.finished_spans()
                        if s.parent_id is None and s.name == "request"
                    ]
                    if tracer.dropped_spans == 0 and (
                        len(roots) + tracer.sampled_out_traces
                        != stats.requests_submitted
                    ):
                        raise SystemExit(
                            f"[obs] {backend}: sampled ledger skew: "
                            f"{len(roots)} kept + {tracer.sampled_out_traces} "
                            f"dropped != {stats.requests_submitted} submitted"
                        )
                    bad = [
                        s for s in roots
                        if s.attrs.get("outcome") not in ("converged", "cancelled")
                        and s.attrs.get("sampled") == "tail"
                    ]
                    if stats.requests_failed and not bad:
                        raise SystemExit(
                            f"[obs] {backend}: failed requests were sampled out"
                        )
                if variant == "untraced":
                    # The collectors actually publish on scrape.
                    if "repro_requests_submitted_total" not in scrape:
                        raise SystemExit(
                            f"[obs] {backend}: metrics collector silent"
                        )
                if variant not in best or wall < best[variant][0]:
                    best[variant] = (wall, stats, obs)

        baseline_rps = total / best["baseline"][0]
        costs[backend] = {}
        for variant in _OBS_VARIANTS:
            wall, stats, obs = best[variant]
            rps = total / wall
            cost = 1.0 - rps / baseline_rps
            if variant != "baseline":
                costs[backend][variant] = cost
            entry: Dict[str, object] = {
                "benchmark": "obs",
                "backend": backend,
                "matrix": label,
                "config": "poly16",
                "dtype": "double",
                "variant": variant,
                "clients": clients,
                "requests": total,
                "tolerance": tol,
                "max_block": session_kwargs["max_block"],
                "wall_seconds": wall,
                "rhs_per_second": rps,
                "throughput_cost_vs_baseline": max(0.0, cost),
                "latency_p50_ms": stats.latency.p50_ms,
                "latency_p95_ms": stats.latency.p95_ms,
            }
            if variant == "traced":
                tracer = best["traced"][2].tracer
                entry["finished_spans"] = len(tracer.finished_spans())
                entry["dropped_spans"] = tracer.dropped_spans
            if variant == "sampled":
                tracer = best["sampled"][2].tracer
                entry["finished_spans"] = len(tracer.finished_spans())
                entry["sampled_out_traces"] = tracer.sampled_out_traces
                entry["head_rate"] = tracer.sampler.head_rate
            entries.append(entry)
            print(
                f"[obs] {backend}/{variant}: {total} requests in "
                f"{wall:.2f} s -> {rps:.1f} RHS/s"
                + (
                    f" ({100 * cost:+.1f}% vs baseline)"
                    if variant != "baseline"
                    else ""
                ),
                flush=True,
            )

        if backend == OBS_GATE["backend"]:
            # Export the reference backend's traced run for Perfetto.
            tracer = best["traced"][2].tracer
            payload = export_chrome_trace(trace_path, tracer=tracer)
            print(
                f"[obs] wrote {trace_path} "
                f"({len(payload['traceEvents'])} trace events)"
            )

    summary: Dict[str, object] = {
        "grid": grid,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "tolerance": tol,
        "gate": dict(OBS_GATE),
        "throughput_cost_vs_baseline": costs,
        "chrome_trace": trace_path.name,
    }
    path = write_bench_json("obs", entries, summary=summary, out=out)
    print(f"[obs] wrote {path}")

    gate_costs = costs.get(OBS_GATE["backend"], {})
    failures = []
    if gate_costs.get("untraced", 1.0) > OBS_GATE["max_untraced_cost"]:
        failures.append(
            f"metrics-only serving cost {100 * gate_costs.get('untraced', 1.0):.1f}% "
            f"> {100 * OBS_GATE['max_untraced_cost']:.0f}% RHS/s"
        )
    if gate_costs.get("sampled", 1.0) > OBS_GATE["max_sampled_cost"]:
        failures.append(
            f"sampled tracing cost {100 * gate_costs.get('sampled', 1.0):.1f}% "
            f"> {100 * OBS_GATE['max_sampled_cost']:.0f}% RHS/s"
        )
    if gate_costs.get("traced", 1.0) > OBS_GATE["max_traced_cost"]:
        failures.append(
            f"traced serving cost {100 * gate_costs.get('traced', 1.0):.1f}% "
            f"> {100 * OBS_GATE['max_traced_cost']:.0f}% RHS/s"
        )
    if failures:
        for failure in failures:
            print(f"[obs] FAIL gate ({OBS_GATE['backend']}): {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"[obs] gate holds on {OBS_GATE['backend']}: tracing off "
        f"{100 * gate_costs.get('untraced', 0.0):+.1f}%, sampled "
        f"{100 * gate_costs.get('sampled', 0.0):+.1f}%, tracing on "
        f"{100 * gate_costs.get('traced', 0.0):+.1f}% RHS/s vs baseline"
    )
    return path


#: The solver-farm acceptance gate, checked on the reference backend:
#: with ``operators`` tenants sharing ``max_sessions`` warm-session slots
#: under a skewed traffic mix (one hot tenant submitting ~half the fleet's
#: requests), the farm must (a) beat the naive one-session-at-a-time
#: baseline by ``min_fleet_speedup`` in fleet RHS/s, (b) keep every cold
#: tenant's p95 latency within ``max_cold_p95_degradation`` of the same
#: tenant served alone (no noisy-neighbour starvation), and (c) actually
#: exercise eviction/re-warm churn (``min_evictions``).
FARM_GATE = {
    "backend": "numpy",
    "matrix": "Laplace3D16",
    "operators": 8,
    "max_sessions": 6,
    "min_fleet_speedup": 1.5,
    "max_cold_p95_degradation": 3.0,
    "min_evictions": 1,
}


def run_farm(
    out: Optional[pathlib.Path] = None,
    *,
    grid: int = 16,
    operators: int = 8,
    max_sessions: int = 6,
    workers: int = 3,
    hot_requests: int = 24,
    cold_requests: int = 4,
    tol: float = 1e-8,
    repeats: int = 3,
) -> pathlib.Path:
    """Multi-tenant solver-farm benchmark → BENCH_farm.json (with gate).

    The workload is a skewed multi-tenant mix: ``operators`` operators
    (same Laplace3D system, independently registered and warmed — the
    serving cost structure, not the numerics, is under test), where tenant
    0 is *hot* (``hot_requests`` submissions) and the rest are cold
    (``cold_requests`` each).  Three measurements per backend:

    * **farm** — every tenant drives its requests concurrently through one
      :class:`repro.serve.SolverFarm` with ``max_sessions < operators``,
      so the run includes LRU eviction and transparent re-warm;
    * **naive** — the no-farm alternative: the same trace served
      sequentially with a single warm :class:`OperatorSession` at a time,
      rebuilt on every operator switch;
    * **cold-only** — the cold tenants served concurrently through an
      identical farm *without* the hot tenant: the per-tenant p95 latency
      baseline that isolates exactly the hot neighbour's impact for the
      noisy-neighbour check (cold-vs-cold contention is present in both
      runs and cancels out of the ratio).

    Farm and naive measurements are interleaved across ``repeats`` so
    machine drift cancels out of the throughput ratio; each tenant's best
    p95 across the contended repeats is compared against its cold-only
    baseline.  Enforces :data:`FARM_GATE` on the reference backend.
    """
    import threading

    from repro.config import rng
    from repro.matrices import laplace3d
    from repro.preconditioners.polynomial import GmresPolynomialPreconditioner
    from repro.serve import OperatorSession, SolverFarm

    label = f"Laplace3D{grid}"
    keys = [f"op{i}" for i in range(operators)]
    hot = keys[0]
    counts = {k: (hot_requests if k == hot else cold_requests) for k in keys}
    total = sum(counts.values())
    # One matrix and one preconditioner instance *per operator*: tenants
    # are served concurrently, and both the matrix (backend plans cache
    # kernel scratch on it) and the polynomial preconditioner (recurrence
    # scratch) are mutable solver state that must not be shared across
    # concurrently-dispatched operators (see SolverFarm.register).  Real
    # deployments register distinct operators anyway; the identical
    # spectra here just keep the per-request work uniform across tenants.
    # Setup cost is paid outside any timed window, as a deployment pays
    # it at registration time.
    matrices = {k: laplace3d(grid) for k in keys}
    matrix = matrices[keys[0]]
    preconds = {
        k: GmresPolynomialPreconditioner(matrices[k], degree=16) for k in keys
    }
    session_kwargs = dict(
        restart=10,
        tol=tol,
        max_restarts=60,
    )
    # Per-operator batching width, as a deployment would tune it: the hot
    # tenant coalesces to 8-wide blocks, the cold tenants' full burst is
    # exactly one 4-wide block (so a burst dispatches immediately instead
    # of waiting out the micro-batch window for stragglers).
    max_blocks = {k: (8 if k == hot else 4) for k in keys}
    B = {
        k: rng(3000 + i).standard_normal((matrix.n_rows, counts[k]))
        for i, k in enumerate(keys)
    }

    # The naive baseline replays this deterministic trace: hot bursts of 4
    # interleaved with one request from each cold tenant — the arrival
    # pattern the farm's clients also approximate.
    trace: List[tuple] = []
    remaining = dict(counts)
    while any(remaining.values()):
        for _ in range(4):
            if remaining[hot]:
                trace.append((hot, counts[hot] - remaining[hot]))
                remaining[hot] -= 1
        for k in keys[1:]:
            if remaining[k]:
                trace.append((k, counts[k] - remaining[k]))
                remaining[k] -= 1
    assert len(trace) == total

    entries: List[Dict[str, object]] = []
    summary_speedups: Dict[str, float] = {}
    summary_p95: Dict[str, float] = {}
    summary_evictions: Dict[str, int] = {}

    for backend in each_backend():

        def run_naive() -> tuple:
            """One warm session at a time, rebuilt on every operator switch."""
            start = time.perf_counter()
            current: Optional[str] = None
            session: Optional[OperatorSession] = None
            switches = 0
            try:
                for key, idx in trace:
                    if key != current:
                        if session is not None:
                            session.close()
                        session = OperatorSession(
                            matrices[key],
                            name=f"naive-{key}",
                            preconditioner=preconds[key],
                            max_block=max_blocks[key],
                            **session_kwargs,
                        )
                        current, switches = key, switches + 1
                    result = session.solve(B[key][:, idx])
                    assert result.converged, f"naive {key}[{idx}] {result.status}"
            finally:
                if session is not None:
                    session.close()
            return time.perf_counter() - start, switches

        def run_fleet(selected: List[str]) -> tuple:
            """Drive ``selected`` tenants concurrently through one farm."""
            farm = SolverFarm(
                max_sessions=max_sessions,
                workers=workers,
                queue_depth=max(128, hot_requests * 2),
                fairness="weighted",
                max_wait_ms=2.0,
                name="bench",
            )
            for k in selected:
                farm.register(
                    k,
                    matrices[k],
                    preconditioner=preconds[k],
                    max_block=max_blocks[k],
                    **session_kwargs,
                )
            errors: List[tuple] = []

            def client(k: str) -> None:
                try:
                    futures = [
                        farm.submit(k, B[k][:, j]) for j in range(counts[k])
                    ]
                    for j, f in enumerate(futures):
                        result = f.result(timeout=600)
                        assert result.converged, f"{k}[{j}] {result.status}"
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append((k, exc))

            threads = [
                threading.Thread(target=client, args=(k,), name=f"tenant-{k}")
                for k in selected
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - start
            stats = farm.stats()
            farm.close()
            if errors:
                raise SystemExit(f"[farm] {backend}: tenant errors: {errors[:3]}")
            return wall, stats

        # Hot-free baseline first (per-cold-tenant p95 without the noisy
        # neighbour), then the contended farm and naive runs interleaved
        # across repeats.
        baseline_p95: Dict[str, float] = {}
        for _ in range(max(1, repeats)):
            _, cold_stats = run_fleet(keys[1:])
            for k in keys[1:]:
                p95 = cold_stats.tenants[k].serve.latency.p95_ms
                baseline_p95[k] = min(baseline_p95.get(k, float("inf")), p95)
        best_farm: Optional[tuple] = None
        best_naive = float("inf")
        naive_switches = 0
        cold_best_p95: Dict[str, float] = {}
        for _ in range(max(1, repeats)):
            wall, stats = run_fleet(keys)
            if best_farm is None or wall < best_farm[0]:
                best_farm = (wall, stats)
            for k in keys[1:]:
                p95 = stats.tenants[k].serve.latency.p95_ms
                cold_best_p95[k] = min(cold_best_p95.get(k, float("inf")), p95)
            naive_wall, naive_switches = run_naive()
            best_naive = min(best_naive, naive_wall)

        farm_wall, farm_stats = best_farm
        # Fault-tolerance quiescence gate: a healthy benchmark load must
        # not leak requests (submitted == completed + failed) nor trigger
        # any of the failure machinery — deadlines, cancellations and
        # breaker trips all belong to chaos runs, not this one.
        fleet = farm_stats.fleet
        if fleet.requests_submitted != (
            fleet.requests_completed + fleet.requests_failed
        ):
            raise SystemExit(
                f"[farm] {backend}: telemetry does not reconcile: "
                f"{fleet.requests_submitted} submitted != "
                f"{fleet.requests_completed} completed + "
                f"{fleet.requests_failed} failed"
            )
        if (
            fleet.requests_timed_out
            or fleet.requests_cancelled
            or farm_stats.breaker_trips
        ):
            raise SystemExit(
                f"[farm] {backend}: spurious failure-path activity under "
                f"healthy load: timed_out={fleet.requests_timed_out} "
                f"cancelled={fleet.requests_cancelled} "
                f"breaker_trips={farm_stats.breaker_trips}"
            )
        farm_rps = total / farm_wall
        naive_rps = total / best_naive
        speedup = farm_rps / naive_rps
        worst_ratio = max(
            (cold_best_p95[k] / baseline_p95[k] if baseline_p95[k] > 0 else 0.0)
            for k in keys[1:]
        )
        summary_speedups[backend] = speedup
        summary_p95[backend] = worst_ratio
        summary_evictions[backend] = farm_stats.evictions

        common = {
            "benchmark": "farm",
            "backend": backend,
            "matrix": label,
            "config": "poly16",
            "dtype": "double",
            "operators": operators,
            "max_sessions": max_sessions,
            "workers": workers,
            "requests": total,
            "tolerance": tol,
        }
        entries.append(
            dict(
                common,
                mode="naive",
                wall_seconds=best_naive,
                rhs_per_second=naive_rps,
                session_rebuilds=naive_switches,
            )
        )
        entries.append(
            dict(
                common,
                mode="farm",
                wall_seconds=farm_wall,
                rhs_per_second=farm_rps,
                fleet_speedup_vs_naive=speedup,
                evictions=farm_stats.evictions,
                sessions_created=farm_stats.sessions_created,
                sessions_live=farm_stats.sessions_live,
                latency_p50_ms=farm_stats.fleet.latency.p50_ms,
                latency_p95_ms=farm_stats.fleet.latency.p95_ms,
                worst_cold_p95_degradation=worst_ratio,
                requests_timed_out=fleet.requests_timed_out,
                requests_cancelled=fleet.requests_cancelled,
                breaker_trips=farm_stats.breaker_trips,
            )
        )
        for k in keys:
            tenant = farm_stats.tenants[k]
            entries.append(
                dict(
                    common,
                    mode="farm_tenant",
                    tenant=k,
                    role="hot" if k == hot else "cold",
                    requests=tenant.serve.requests_completed,
                    fairness_share=tenant.fairness_share,
                    expected_share=tenant.expected_share,
                    evictions=tenant.evictions,
                    queue_wait_p95_ms=tenant.serve.queue_wait.p95_ms,
                    latency_p50_ms=tenant.serve.latency.p50_ms,
                    latency_p95_ms=tenant.serve.latency.p95_ms,
                    hot_free_latency_p95_ms=baseline_p95.get(k),
                )
            )
        print(
            f"[farm] {backend}: {total} requests / {operators} operators -> "
            f"farm {farm_rps:.1f} RHS/s vs naive {naive_rps:.1f} RHS/s "
            f"({speedup:.2f}x), evictions {farm_stats.evictions}, "
            f"worst cold p95 {worst_ratio:.2f}x its hot-free baseline",
            flush=True,
        )

    summary: Dict[str, object] = {
        "grid": grid,
        "operators": operators,
        "max_sessions": max_sessions,
        "workers": workers,
        "hot_requests": hot_requests,
        "cold_requests": cold_requests,
        "tolerance": tol,
        "repeats": repeats,
        "gate": dict(FARM_GATE),
        "fleet_speedup_farm_over_naive": summary_speedups,
        "worst_cold_p95_degradation": summary_p95,
        "evictions": summary_evictions,
    }
    path = write_bench_json("farm", entries, summary=summary, out=out)
    print(f"[farm] wrote {path}")

    gate_backend = FARM_GATE["backend"]
    failures = []
    if summary_speedups.get(gate_backend, 0.0) < FARM_GATE["min_fleet_speedup"]:
        failures.append(
            f"fleet speedup {summary_speedups.get(gate_backend, 0.0):.2f}x "
            f"< {FARM_GATE['min_fleet_speedup']}x vs naive"
        )
    if summary_p95.get(gate_backend, float("inf")) > FARM_GATE["max_cold_p95_degradation"]:
        failures.append(
            f"cold-tenant p95 degraded {summary_p95.get(gate_backend, 0.0):.2f}x "
            f"> {FARM_GATE['max_cold_p95_degradation']}x by the hot neighbour"
        )
    if summary_evictions.get(gate_backend, 0) < FARM_GATE["min_evictions"]:
        failures.append("no session evictions observed (LRU churn not exercised)")
    if failures:
        for failure in failures:
            print(f"[farm] FAIL gate ({gate_backend}): {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"[farm] gate holds on {gate_backend}: "
        f"{summary_speedups[gate_backend]:.2f}x fleet RHS/s, cold p95 "
        f"{summary_p95[gate_backend]:.2f}x solo, "
        f"{summary_evictions[gate_backend]} evictions"
    )
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="repro benchmark harness CLI")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the scaled-down fig1/fig5 smoke benchmark (BENCH_smoke.json)",
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help="run the kernel-backend comparison (BENCH_backends.json)",
    )
    parser.add_argument(
        "--solve",
        action="store_true",
        help="run the end-to-end GMRES(50) solve benchmark (BENCH_solve.json)",
    )
    parser.add_argument(
        "--solve-block",
        action="store_true",
        help="run the batched multi-RHS solve benchmark with its >=2x "
        "per-RHS gate (BENCH_block.json)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the solver-service throughput benchmark with its >=2x "
        "batched-vs-unbatched RHS/s gate (BENCH_serve.json)",
    )
    parser.add_argument(
        "--farm",
        action="store_true",
        help="run the multi-tenant solver-farm benchmark with its >=1.5x "
        "fleet-RHS/s + noisy-neighbour + eviction gate (BENCH_farm.json)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run the observability overhead benchmark (tracing off / "
        "sampled / fully on vs no-obs baseline, <2%%/<2%%/<10%% RHS/s "
        "gates) and emit BENCH_obs.json plus the Chrome trace artifact "
        "TRACE_obs.json",
    )
    parser.add_argument(
        "--grid", type=int, default=64, help="Laplace3D grid for --backends"
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent client threads for --serve",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="override the output path (only valid with exactly one mode)",
    )
    args = parser.parse_args(argv)
    modes = [
        args.smoke,
        args.backends,
        args.solve,
        args.solve_block,
        args.serve,
        args.farm,
        args.obs,
    ]
    if not any(modes):
        parser.error(
            "choose at least one of --smoke / --backends / --solve / "
            "--solve-block / --serve / --farm / --obs"
        )
    if args.out is not None and sum(modes) > 1:
        parser.error("--out is ambiguous with more than one mode")
    if args.smoke:
        run_smoke(out=args.out)
    if args.backends:
        run_backend_comparison(args.grid, out=args.out)
    if args.solve:
        run_solve(out=args.out)
    if args.solve_block:
        run_solve_block(out=args.out)
    if args.serve:
        run_serve(out=args.out, clients=args.clients)
    if args.farm:
        run_farm(out=args.out)
    if args.obs:
        run_obs(out=args.out, clients=args.clients)
    return 0


if __name__ == "__main__":
    sys.exit(main())
