"""Helpers shared by the benchmark modules (kept out of conftest so the
benchmark files can import them explicitly).

Besides the pytest-benchmark glue (:func:`run_once`) this module provides
the machine-readable benchmark output used by CI:

* :func:`write_bench_json` writes a ``BENCH_<name>.json`` file with one
  entry per (kernel, precision) bucket — wall seconds, modelled seconds,
  call counts — tagged with backend, matrix and dtype, so perf trajectories
  can be diffed across commits;
* ``python benchmarks/_harness.py --smoke`` runs scaled-down Figure 1 and
  Figure 5 configurations (< 2 minutes) and emits ``BENCH_smoke.json``
  (the CI smoke-benchmark job uploads it as an artifact);
* ``python benchmarks/_harness.py --backends`` times the registered kernel
  backends against each other on the 64³ Laplace3D SpMV/SpMM and emits
  ``BENCH_backends.json`` including the measured speedups;
* ``python benchmarks/_harness.py --solve`` times the *end-to-end* metered
  and unmetered GMRES(50) fp64 solve on the smoke matrices for every
  registered backend and emits ``BENCH_solve.json`` — the solver-level perf
  trajectory.  The summary block records the pre-PR per-iteration baseline
  (measured before the allocation-free hot path landed) and the speedup
  against it; ``benchmarks/check_solve_regression.py`` diffs a fresh run
  against the committed file in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import Dict, List, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The benchmarks reproduce whole experiments (dozens of solver runs), so a
    single timed round is appropriate — the interesting numbers are in the
    experiment reports, the wall time is just bookkeeping.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


# ---------------------------------------------------------------------- #
# machine-readable benchmark records                                     #
# ---------------------------------------------------------------------- #
def timer_entries(
    timer,
    *,
    benchmark: str,
    backend: str,
    matrix: str = "",
    extra: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Flatten a :class:`repro.perfmodel.timer.KernelTimer` into JSON rows.

    One row per (kernel label, precision) bucket, tagged with the backend
    and matrix so rows from different configurations can live in one file.
    """
    rows: List[Dict[str, object]] = []
    for rec in timer.records:
        row: Dict[str, object] = {
            "benchmark": benchmark,
            "backend": backend,
            "matrix": matrix,
            "kernel": rec.label,
            "dtype": rec.precision,
            "calls": rec.calls,
            "wall_seconds": rec.wall_seconds,
            "model_seconds": rec.model_seconds,
            "bytes": rec.bytes,
            "flops": rec.flops,
        }
        if extra:
            row.update(extra)
        rows.append(row)
    return rows


def write_bench_json(
    name: str,
    entries: List[Dict[str, object]],
    *,
    summary: Optional[Dict[str, object]] = None,
    out: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results/``.

    Returns the path written.  The payload is self-describing: a schema
    tag, environment stamps, an optional summary block and the per-kernel
    ``entries``.
    """
    import numpy
    import scipy

    path = out or (RESULTS_DIR / f"BENCH_{name}.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, object] = {
        "schema": "repro-bench/1",
        "name": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "entries": entries,
    }
    if summary:
        payload["summary"] = summary
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------- #
# CLI modes (used by CI)                                                 #
# ---------------------------------------------------------------------- #
def _smoke_entries() -> List[Dict[str, object]]:
    """Scaled-down Figure 1 + Figure 5 runs with per-kernel wall times."""
    from repro.config import get_config
    from repro.experiments import ExperimentConfig, fig1_fd_laplace3d, fig5_kernel_speedups
    from repro.perfmodel import KernelTimer, use_timer

    cfg = ExperimentConfig(quick=True)
    backend = get_config().backend
    entries: List[Dict[str, object]] = []
    for label, driver, matrix in (
        ("figure1_fd_laplace3d", fig1_fd_laplace3d.run, "Laplace3D16"),
        ("figure5_kernel_speedups", fig5_kernel_speedups.run, "three-PDE suite"),
    ):
        with use_timer(KernelTimer(label)) as timer:
            start = time.perf_counter()
            driver(cfg)
            elapsed = time.perf_counter() - start
        entries.extend(
            timer_entries(
                timer,
                benchmark=label,
                backend=backend,
                matrix=matrix,
                extra={"total_wall_seconds": elapsed},
            )
        )
        print(f"[smoke] {label}: {elapsed:.1f} s wall", flush=True)
    return entries


def run_smoke(out: Optional[pathlib.Path] = None) -> pathlib.Path:
    """CI smoke benchmark: quick fig1/fig5 configs → BENCH_smoke.json."""
    path = write_bench_json("smoke", _smoke_entries(), out=out)
    print(f"[smoke] wrote {path}")
    return path


def _time_kernel(func, *, repeats: int = 7) -> float:
    """Best-of-``repeats`` wall time of ``func`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_backend_comparison(
    grid: int = 64,
    *,
    n_rhs: int = 8,
    out: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Time every registered backend on Laplace3D SpMV/SpMM → BENCH_backends.json.

    The reference configuration of the acceptance gate is the 64³ Laplace3D
    matrix in fp64; the summary block records the SciPy-over-NumPy SpMV
    speedup for that configuration.
    """
    from repro.backends import available_backends, get_backend
    from repro.config import rng
    from repro.matrices import laplace3d

    matrix64 = laplace3d(grid)
    entries: List[Dict[str, object]] = []
    spmv_times: Dict[str, Dict[str, float]] = {}
    gen = rng()  # deterministic inputs (ReproConfig.seed)
    for dtype_name in ("double", "single"):
        matrix = matrix64.astype(dtype_name)
        x = gen.standard_normal(matrix.n_cols).astype(matrix.dtype)
        X = gen.standard_normal((matrix.n_cols, n_rhs)).astype(matrix.dtype)
        for name in available_backends():
            backend = get_backend(name)
            backend.spmv(matrix, x)  # warm-up pass also builds cached handles
            t_spmv = _time_kernel(lambda: backend.spmv(matrix, x))
            t_spmm = _time_kernel(lambda: backend.spmm(matrix, X))
            spmv_times.setdefault(dtype_name, {})[name] = t_spmv
            for kernel, seconds in (("SpMV", t_spmv), ("SpMM", t_spmm)):
                entries.append(
                    {
                        "benchmark": "backend_comparison",
                        "backend": name,
                        "matrix": matrix.name,
                        "kernel": kernel,
                        "dtype": dtype_name,
                        "calls": 1,
                        "wall_seconds": seconds,
                        "n_rows": matrix.n_rows,
                        "nnz": matrix.nnz,
                        "n_rhs": n_rhs if kernel == "SpMM" else 1,
                    }
                )
            print(
                f"[backends] {matrix.name} {dtype_name} {name}: "
                f"SpMV {t_spmv * 1e3:.2f} ms, SpMM({n_rhs}) {t_spmm * 1e3:.2f} ms",
                flush=True,
            )
    summary: Dict[str, object] = {"grid": grid, "n_rhs": n_rhs}
    for dtype_name, times in spmv_times.items():
        if "numpy" in times and "scipy" in times and times["scipy"] > 0:
            summary[f"spmv_speedup_scipy_over_numpy_{dtype_name}"] = (
                times["numpy"] / times["scipy"]
            )
    path = write_bench_json("backends", entries, summary=summary, out=out)
    print(f"[backends] wrote {path}")
    return path


#: Per-iteration wall time (µs) of the unmetered smoke GMRES(50) fp64 solve
#: measured at commit 88ece0e (the last commit *before* the allocation-free
#: hot path landed) on the machine that recorded the committed
#: ``BENCH_solve.json``; best of 21 runs interleaved with the post-change
#: measurements to cancel machine drift.  Keyed ``"<backend>/<matrix>"``.
#: These numbers are only comparable to measurements from that same
#: committed file — the CI regression check compares fresh runs against the
#: committed wall times with a tolerance band instead.
PRE_PR_BASELINE_US: Dict[str, float] = {
    "numpy/Laplace3D24": 1216.7,
    "numpy/UniFlow2D64": 285.8,
    "scipy/Laplace3D24": 652.6,
    "scipy/UniFlow2D64": 179.6,
}

#: The acceptance-gate configuration: the library-default NumPy reference
#: backend on the larger smoke matrix must beat the pre-PR baseline by this
#: factor (checked against the committed JSON by check_solve_regression.py).
SOLVE_GATE = {"backend": "numpy", "matrix": "Laplace3D24", "min_speedup": 1.25}


def run_solve(out: Optional[pathlib.Path] = None, *, repeats: int = 3) -> pathlib.Path:
    """End-to-end GMRES(50) solve benchmark → BENCH_solve.json.

    For every registered backend and smoke matrix, runs the fp64 GMRES(50)
    solve twice over: *unmetered* (``meter=False`` — the metering fast path,
    raw backend speed) and *metered* (timers active, cost model charged).
    Records best-of-``repeats`` wall seconds and wall µs/iteration.
    Iteration counts are deterministic (bit-identical numerics across the
    out= refactor), so the CI diff can require them to match exactly.
    """
    import numpy as np

    from repro.backends import available_backends
    from repro.linalg.context import ExecutionContext, set_context
    from repro.matrices import laplace3d, uniflow2d
    from repro.solvers.gmres import gmres

    solve_kwargs = dict(restart=50, tol=1e-8, max_restarts=4, fp64_check=False)
    matrices = [("Laplace3D24", laplace3d(24)), ("UniFlow2D64", uniflow2d(64))]
    entries: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}
    try:
        for backend in available_backends():
            for label, matrix in matrices:
                b = np.ones(matrix.n_rows)
                for mode in ("unmetered", "metered"):
                    set_context(ExecutionContext(meter=(mode == "metered"), backend=backend))
                    result = gmres(matrix, b, **solve_kwargs)  # warm-up
                    best = float("inf")
                    for _ in range(repeats):
                        start = time.perf_counter()
                        result = gmres(matrix, b, **solve_kwargs)
                        best = min(best, time.perf_counter() - start)
                    per_iter_us = best / result.iterations * 1e6
                    entries.append(
                        {
                            "benchmark": "solve",
                            "backend": backend,
                            "matrix": label,
                            "solver": "gmres(50)",
                            "dtype": "double",
                            "mode": mode,
                            "status": str(result.status),
                            "iterations": result.iterations,
                            "wall_seconds": best,
                            "wall_per_iteration_us": per_iter_us,
                        }
                    )
                    if mode == "unmetered":
                        key = f"{backend}/{label}"
                        baseline = PRE_PR_BASELINE_US.get(key)
                        if baseline:
                            speedups[key] = baseline / per_iter_us
                    print(
                        f"[solve] {backend} {label} {mode}: "
                        f"{result.iterations} iters, {per_iter_us:.1f} us/iter",
                        flush=True,
                    )
    finally:
        set_context(ExecutionContext())
    summary: Dict[str, object] = {
        "solver": "gmres(50)",
        "dtype": "double",
        "tolerance": solve_kwargs["tol"],
        "repeats": repeats,
        "gate": SOLVE_GATE,
        "pre_pr_baseline_us": dict(PRE_PR_BASELINE_US),
        "unmetered_speedup_vs_pre_pr": speedups,
    }
    path = write_bench_json("solve", entries, summary=summary, out=out)
    print(f"[solve] wrote {path}")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="repro benchmark harness CLI")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the scaled-down fig1/fig5 smoke benchmark (BENCH_smoke.json)",
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help="run the kernel-backend comparison (BENCH_backends.json)",
    )
    parser.add_argument(
        "--solve",
        action="store_true",
        help="run the end-to-end GMRES(50) solve benchmark (BENCH_solve.json)",
    )
    parser.add_argument(
        "--grid", type=int, default=64, help="Laplace3D grid for --backends"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="override the output path (only valid with exactly one mode)",
    )
    args = parser.parse_args(argv)
    modes = [args.smoke, args.backends, args.solve]
    if not any(modes):
        parser.error("choose at least one of --smoke / --backends / --solve")
    if args.out is not None and sum(modes) > 1:
        parser.error("--out is ambiguous with more than one mode")
    if args.smoke:
        run_smoke(out=args.out)
    if args.backends:
        run_backend_comparison(args.grid, out=args.out)
    if args.solve:
        run_solve(out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
