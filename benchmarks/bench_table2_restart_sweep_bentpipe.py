"""Benchmark regenerating Table II: restart-size sweep on BentPipe2D."""

from repro.experiments import table2_restart_bentpipe

from _harness import run_once


def test_table2_restart_sweep_bentpipe(benchmark, experiment_config, record_report):
    report = run_once(benchmark, lambda: table2_restart_bentpipe.run(experiment_config))
    record_report(report, "table2_restart_sweep_bentpipe")

    rows = report.rows
    restarts = [r["restart"] for r in rows]
    double_iters = [r["double iters"] for r in rows]
    double_times = [r["double time [model s]"] for r in rows]
    speedups = [r["speedup"] for r in rows]
    ortho_share = [r["orthog share (double)"] for r in rows]

    # Paper shape: larger restart → fewer fp64 iterations but longer solve
    # time (orthogonalization dominates more and more); GMRES-IR gives
    # speedup at every restart size; the smallest restart is the fastest.
    assert double_iters[0] >= double_iters[-1]
    assert double_times[0] < double_times[-1]
    assert ortho_share[0] < ortho_share[-1]
    assert all(s > 1.0 for s in speedups)
    best_ir_restart = report.parameters["fastest IR restart"]
    assert best_ir_restart == min(restarts)
