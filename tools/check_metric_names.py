#!/usr/bin/env python
"""Lint the metric-name catalog against the source tree (CI gate).

Checks, without importing the package (so it runs in the dependency-free
lint job):

1. every name in ``repro.obs.metrics.METRIC_NAMES`` follows the naming
   convention (snake_case with a ``repro_`` prefix) and is unique;
2. every ``"repro_*"`` string literal in ``src/`` — i.e. every metric
   name a module registers — is declared in the catalog;
3. every catalog entry is actually registered somewhere in ``src/``
   (no dead catalog rows).

Exits non-zero with one line per violation.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
METRICS_MODULE = SRC / "obs" / "metrics.py"

#: Must match METRIC_NAME_RE in src/repro/obs/metrics.py.
NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")

#: Any repro_-prefixed string literal is treated as a metric name.  The
#: suffixes Prometheus appends to histogram series are not registrations.
LITERAL_RE = re.compile(r"^repro_[a-z0-9_]+$")
SERIES_SUFFIXES = ("_bucket", "_sum", "_count")


def load_catalog() -> tuple:
    """Pull METRIC_NAMES out of metrics.py via ast (no package import)."""
    tree = ast.parse(METRICS_MODULE.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "METRIC_NAMES" in targets:
                return tuple(ast.literal_eval(node.value))
    raise SystemExit(f"METRIC_NAMES not found in {METRICS_MODULE}")


def source_literals() -> dict:
    """All repro_* string literals in src/, mapped to their locations."""
    found: dict = {}
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if LITERAL_RE.match(node.value):
                    where = f"{path.relative_to(REPO)}:{node.lineno}"
                    found.setdefault(node.value, []).append(where)
    return found


def main() -> int:
    catalog = load_catalog()
    errors = []

    seen = set()
    for name in catalog:
        if not NAME_RE.match(name):
            errors.append(f"catalog name violates convention: {name!r}")
        if name in seen:
            errors.append(f"catalog name duplicated: {name!r}")
        seen.add(name)

    literals = source_literals()
    for name, locations in sorted(literals.items()):
        base = name
        for suffix in SERIES_SUFFIXES:
            if base.endswith(suffix) and base[: -len(suffix)] in seen:
                base = base[: -len(suffix)]
                break
        if base not in seen:
            errors.append(
                f"metric {name!r} used at {locations[0]} but not declared "
                "in METRIC_NAMES"
            )
        if not NAME_RE.match(base):
            errors.append(
                f"metric {name!r} at {locations[0]} violates the naming "
                "convention (snake_case, repro_ prefix)"
            )

    for name in catalog:
        if name not in literals:
            errors.append(f"catalog name never registered in src/: {name!r}")

    if errors:
        for error in errors:
            print(f"check_metric_names: {error}", file=sys.stderr)
        return 1
    print(
        f"check_metric_names: {len(catalog)} catalog names, "
        f"{len(literals)} source literals — OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
