#!/usr/bin/env python
"""Half/single/double GMRES-IR — the paper's future-work extension.

Section VI of the paper: "Since Kokkos is enabling support for half
precision, we will also study ways to incorporate a third level of
precision into the GMRES-IR solver while maintaining high accuracy."

This example runs the library's three-precision refinement solver
(fp16 inner cycles, normalised for fp16's narrow range, with an fp32
fallback when a half-precision cycle fails to make progress) next to the
two-precision GMRES-IR and the fp64 baseline, and reports how many cycles
actually ran in half precision — the question this extension probes.

Run:
    python examples/three_precision_ir.py [grid]
"""

import sys

import repro
from repro.analysis import format_table
from repro.linalg import use_device
from repro.perfmodel import get_device


def main(grid: int = 48) -> None:
    matrix = repro.matrices.uniflow2d(grid)
    b = repro.ones_rhs(matrix)
    device = get_device("v100").scaled(matrix.n_rows / 2500**2)
    restart, tol = 25, 1e-10
    print(f"problem: {matrix.name} (n={matrix.n_rows}), restart={restart}, tol={tol}\n")

    with use_device(device):
        double = repro.gmres(matrix, b, precision="double", restart=restart, tol=tol)
        two = repro.gmres_ir(matrix, b, restart=restart, tol=tol)
        three = repro.gmres_ir_three_precision(matrix, b, restart=restart, tol=tol)

    rows = [
        {
            "solver": name,
            "precisions": r.precision,
            "status": r.status.value,
            "iterations": r.iterations,
            "true residual": f"{r.relative_residual_fp64:.1e}",
            "modelled time [ms]": r.model_seconds * 1e3,
            "speedup vs fp64": double.model_seconds / r.model_seconds,
        }
        for name, r in (
            ("GMRES", double),
            ("GMRES-IR", two),
            ("GMRES-IR3", three),
        )
    ]
    print(format_table(rows, float_format=".3f"))
    details = three.details
    print(
        f"\nGMRES-IR3 ran {details['half_precision_cycles']} cycles in fp16 and fell back to "
        f"fp32 for {details['fp32_fallback_cycles']} cycles; all refinement happens in fp64, so "
        f"the final residual still reaches {three.relative_residual_fp64:.1e}."
    )
    print(
        "On well-conditioned problems fp16 cycles are usable and cut the modelled memory "
        "traffic further; on ill-conditioned ones the solver falls back to fp32 — run "
        "examples/polynomial_preconditioning.py's Stretched2D problem through gmres_ir_three_precision "
        "to see the fallback dominate."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
