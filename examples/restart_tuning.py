#!/usr/bin/env python
"""Choosing a restart length for GMRES-IR (Table II and Figure 8).

The paper's practical guidance: the restart length trades orthogonalization
cost (grows with the subspace) against convergence speed (restarting loses
eigenvector information), and for GMRES-IR there is an extra failure mode —
if the restart is so large that the fp32 inner solver stalls inside a
cycle, the fp64 residual is refreshed too rarely and GMRES-IR wastes
iterations.  This example sweeps the restart length on two problems:

* BentPipe2D (orthogonalization-dominated, Table II): the smallest restart
  wins and GMRES-IR gives speedup everywhere;
* Laplace3D (Figure 8): moderate restarts give speedup, very large restarts
  make GMRES-IR lose because of the inner stall.

Run:
    python examples/restart_tuning.py
"""

from repro.analysis import format_table
from repro.experiments import ExperimentConfig, fig8_restart_laplace3d, table2_restart_bentpipe


def main() -> None:
    config = ExperimentConfig()

    print("BentPipe2D restart sweep (Table II):")
    table2 = table2_restart_bentpipe.run(config)
    print(format_table(table2.rows, table2.columns, float_format=".4g"))
    print(
        f"fastest IR restart: {table2.parameters['fastest IR restart']}  "
        f"(orthogonalization share grows from "
        f"{table2.rows[0]['orthog share (double)']:.0%} to "
        f"{table2.rows[-1]['orthog share (double)']:.0%} across the sweep)\n"
    )

    print("Laplace3D restart sweep (Figure 8):")
    fig8 = fig8_restart_laplace3d.run(config)
    print(format_table(fig8.rows, fig8.columns, float_format=".4g"))
    stalled = [r for r in fig8.rows if r["IR/double iteration ratio"] > 1.8]
    if stalled:
        worst = stalled[-1]
        print(
            f"\nAt restart {worst['restart']} the fp32 inner solver stalls inside the cycle: "
            f"GMRES-IR needs {worst['IR/double iteration ratio']:.1f}x the fp64 iterations "
            f"and the speedup drops to {worst['speedup']:.2f}x — the paper's advice is to "
            "keep the restart moderate and let iterative refinement do the rest."
        )


if __name__ == "__main__":
    main()
