#!/usr/bin/env python
"""Mixed-precision polynomial preconditioning (Sections V-C and V-F).

Scenario: an SPD system (Laplacian on a stretched grid) on which restarted
GMRES cannot converge without preconditioning.  A GMRES-polynomial
preconditioner fixes that, and because its application is almost entirely
SpMVs it is the ideal place to drop to fp32.  The example:

1. shows the three configurations of Figures 6/7 (fp64 poly, fp32 poly
   inside fp64 GMRES, fp32 poly inside GMRES-IR) and their modelled times;
2. sweeps the polynomial degree with the fp32 preconditioner to expose the
   Section V-F "loss of accuracy" failure mode (implicit residual says
   converged, true residual disagrees) and shows that GMRES-IR with the
   same preconditioner does not suffer from it.

Run:
    python examples/polynomial_preconditioning.py [grid]
"""

import sys

import repro
from repro.analysis import format_table
from repro.linalg import use_device
from repro.perfmodel import get_device
from repro.preconditioners import GmresPolynomialPreconditioner


def main(grid: int = 128) -> None:
    matrix = repro.matrices.stretched2d(grid, stretch=8)
    b = repro.ones_rhs(matrix)
    device = get_device("v100").scaled(matrix.n_rows / 1500**2)
    restart, tol = 25, 1e-10
    print(f"problem: {matrix.name} (n={matrix.n_rows}), restart={restart}, tol={tol}")

    with use_device(device):
        unprec = repro.gmres(matrix, b, restart=restart, tol=tol, max_restarts=40)
    print(
        f"\nwithout preconditioning: {unprec.status.value} after {unprec.iterations} "
        f"iterations (residual {unprec.relative_residual:.1e}) — preconditioning is required."
    )

    # --- Figures 6/7: three precision configurations, fixed degree ------- #
    degree = 10
    poly64 = GmresPolynomialPreconditioner(matrix, degree=degree, precision="double")
    poly32 = GmresPolynomialPreconditioner(matrix, degree=degree, precision="single")
    with use_device(device):
        runs = {
            "fp64 GMRES + fp64 poly": repro.gmres(
                matrix, b, restart=restart, tol=tol, preconditioner=poly64
            ),
            "fp64 GMRES + fp32 poly": repro.gmres(
                matrix, b, restart=restart, tol=tol, preconditioner=poly32
            ),
            "GMRES-IR  + fp32 poly": repro.gmres_ir(
                matrix, b, restart=restart, tol=tol, preconditioner=poly32
            ),
        }
    base_time = runs["fp64 GMRES + fp64 poly"].model_seconds
    rows = [
        {
            "configuration": name,
            "status": r.status.value,
            "iterations": r.iterations,
            "true residual": f"{r.relative_residual_fp64:.1e}",
            "modelled time [ms]": r.model_seconds * 1e3,
            "speedup": base_time / r.model_seconds,
        }
        for name, r in runs.items()
    ]
    print(f"\ndegree-{degree} GMRES polynomial (Figures 6/7):")
    print(format_table(rows, float_format=".3f"))

    # --- Section V-F: degree sweep with the fp32 preconditioner ---------- #
    print("\nfp32-preconditioner degree sweep inside fp64 GMRES (Section V-F):")
    sweep_rows = []
    for deg in (5, 10, 20, 40):
        poly = GmresPolynomialPreconditioner(matrix, degree=deg, precision="single")
        with use_device(device):
            run = repro.gmres(matrix, b, restart=restart, tol=tol,
                              preconditioner=poly, max_restarts=100)
        sweep_rows.append(
            {
                "degree": deg,
                "status": run.status.value,
                "iterations": run.iterations,
                "implicit residual": f"{run.history.implicit_norms[-1]:.1e}",
                "true residual": f"{run.relative_residual_fp64:.1e}",
            }
        )
    print(format_table(sweep_rows))
    print(
        "\nAt high degree the fp32 polynomial accumulates enough rounding error that the\n"
        "implicit residual 'converges' while the true residual does not (loss of accuracy).\n"
        "GMRES-IR recomputes the true fp64 residual at every restart and is immune:"
    )
    poly = GmresPolynomialPreconditioner(matrix, degree=40, precision="single")
    with use_device(device):
        fixed = repro.gmres_ir(matrix, b, restart=restart, tol=tol,
                               preconditioner=poly, max_restarts=100)
    print(f"  GMRES-IR + fp32 degree-40 poly: {fixed.status.value}, "
          f"true residual {fixed.relative_residual_fp64:.1e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
