#!/usr/bin/env python
"""Table III style survey over the SuiteSparse proxy suite.

Runs GMRES double and GMRES-IR (with the preconditioner assignment the
paper uses for each matrix: none, point/block Jacobi after RCM, or a GMRES
polynomial) over the ten structural proxies for the paper's SuiteSparse
matrices, and prints the measured speedups next to the values the paper
reports — the reproduction of Table III.

Run (full suite takes a minute or two):
    python examples/suitesparse_survey.py            # all ten proxies
    python examples/suitesparse_survey.py hood cfd2  # a subset
"""

import sys

from repro.analysis import format_table
from repro.experiments import ExperimentConfig, table3_suitesparse


def main(names=None) -> None:
    config = ExperimentConfig()
    report = table3_suitesparse.run(
        config,
        proxy_names=list(names) if names else None,
        include_galeri=not names,
    )
    rows = [
        {
            "matrix": r["matrix"],
            "n": r["n"],
            "prec": r["prec"],
            "double iters": r["double iters"],
            "IR iters": r["IR iters"],
            "double [ms]": r["double time [model s]"] * 1e3,
            "IR [ms]": r["IR time [model s]"] * 1e3,
            "speedup": r["speedup"],
            "paper speedup": r["paper speedup"],
        }
        for r in report.rows
    ]
    print(format_table(rows, float_format=".2f", title=report.title))
    print()
    for note in report.notes:
        print(f"note: {note}")
    helped = [r for r in report.rows if r["speedup"] > 1.1]
    print(
        f"\nGMRES-IR helps on {len(helped)}/{len(report.rows)} problems — "
        "broadly, the ones that need many hundreds or thousands of iterations "
        "(the paper's conclusion)."
    )


if __name__ == "__main__":
    main(sys.argv[1:] or None)
