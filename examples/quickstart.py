#!/usr/bin/env python
"""Quickstart: solve a PDE system with GMRES double and GMRES-IR.

Builds the paper's BentPipe2D convection-diffusion problem (at a scaled
grid size), solves it with double-precision GMRES(m) and with GMRES-IR
(fp32 inner cycles, fp64 refinement), and prints the convergence summary,
the modelled V100 kernel-time breakdown and the speedup — the minimal
version of Figure 4 / Table I of the paper.

Run:
    python examples/quickstart.py [grid]
"""

import sys

import repro
from repro.analysis import speedup_table
from repro.linalg import use_device
from repro.perfmodel import get_device


def main(grid: int = 64) -> None:
    # 1. Build the problem: convection-dominated 2D flow, all-ones RHS.
    matrix = repro.matrices.bentpipe2d(grid)
    b = repro.ones_rhs(matrix)
    print(f"problem: {matrix.name}, n={matrix.n_rows}, nnz={matrix.nnz}")

    # 2. Model the paper's V100, dimensionally scaled to this problem size
    #    (see DESIGN.md); all kernel calls are metered against it.
    device = get_device("v100").scaled(matrix.n_rows / 1500**2)

    with use_device(device):
        # 3. Baseline: everything in double precision.
        double = repro.gmres(matrix, b, precision="double", restart=25, tol=1e-10)
        # 4. GMRES-IR: fp32 inner GMRES(25) cycles, fp64 refinement.
        mixed = repro.gmres_ir(matrix, b, restart=25, tol=1e-10)

    print("\n--- GMRES double ---")
    print(double.summary())
    print("\n--- GMRES-IR ---")
    print(mixed.summary())

    # 5. Per-kernel comparison (Table I layout).
    table = speedup_table(double, mixed, baseline_name="GMRES double", comparison_name="GMRES-IR")
    print("\n" + table.format(scale=1e3, time_unit="modelled ms"))
    print(f"\nGMRES-IR modelled speedup: {table.total_speedup:.2f}x "
          f"(paper reports 1.32x on the full-size problem)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
