#!/usr/bin/env python
"""Multiprecision strategies on a convection-dominated flow problem.

The scenario that motivates the paper: a large nonsymmetric system from a
convection-dominated PDE needs thousands of GMRES iterations, double
precision is required in the answer, and the hardware is much faster in
fp32.  This example compares, on the BentPipe2D problem:

* GMRES in fp32 only        — fast per iteration but stagnates near 1e-6;
* GMRES in fp64 only        — accurate but pays full-precision bandwidth;
* GMRES-FD (float→double)   — switch precision halfway, needs tuning;
* GMRES-IR                  — fp32 inner cycles + fp64 refinement.

and prints a compact comparison table plus the residual history of each
solver (the data behind Figures 1-4 of the paper).

Run:
    python examples/convection_diffusion_ir.py [grid]
"""

import sys

import repro
from repro.analysis import format_table
from repro.linalg import use_device
from repro.perfmodel import get_device


def main(grid: int = 64) -> None:
    matrix = repro.matrices.bentpipe2d(grid)
    b = repro.ones_rhs(matrix)
    device = get_device("v100").scaled(matrix.n_rows / 1500**2)
    restart, tol = 25, 1e-10
    print(f"problem: {matrix.name} (n={matrix.n_rows}), restart={restart}, tol={tol}\n")

    with use_device(device):
        runs = {
            "GMRES fp32": repro.gmres(
                matrix, b, precision="single", restart=restart, tol=tol, max_restarts=120
            ),
            "GMRES fp64": repro.gmres(
                matrix, b, precision="double", restart=restart, tol=tol
            ),
            "GMRES-FD (switch @ 4 cycles)": repro.gmres_fd(
                matrix, b, switch_iteration=4 * restart, restart=restart, tol=tol
            ),
            "GMRES-IR": repro.gmres_ir(matrix, b, restart=restart, tol=tol),
        }

    reference = runs["GMRES fp64"].model_seconds
    rows = []
    for name, result in runs.items():
        rows.append(
            {
                "solver": name,
                "status": result.status.value,
                "iterations": result.iterations,
                "true rel. residual": f"{result.relative_residual_fp64:.2e}",
                "modelled time [ms]": result.model_seconds * 1e3,
                "speedup vs fp64": reference / result.model_seconds,
            }
        )
    print(format_table(rows, float_format=".3f"))

    print(
        "\nfp32 stagnates near {:.1e}; GMRES-IR reaches the fp64 tolerance in "
        "{} iterations ({} refinements) and is {:.2f}x faster than fp64-only GMRES.".format(
            runs["GMRES fp32"].relative_residual_fp64,
            runs["GMRES-IR"].iterations,
            runs["GMRES-IR"].restarts,
            reference / runs["GMRES-IR"].model_seconds,
        )
    )

    # Residual history samples (plot these to reproduce Figure 3).
    print("\nresidual history (every 10th recorded point):")
    for name in ("GMRES fp64", "GMRES-IR"):
        hist = runs[name].history
        pairs = list(zip(hist.implicit_iterations, hist.implicit_norms))[::10]
        preview = ", ".join(f"{i}:{r:.1e}" for i, r in pairs[:8])
        print(f"  {name:10s}: {preview} ...")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
